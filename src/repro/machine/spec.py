"""Hardware specifications for the simulated machines.

Two concrete machines mirror the paper's testbeds (Section IV-A):

* **Crill** (University of Houston): dual-socket, two 2.4 GHz 8-core
  Intel Xeon E5-2665 (Sandy Bridge), 2-way HyperThreading -> 32
  hardware threads, 115 W TDP per package, RAPL capping and energy
  counters available.
* **Minotaur** (University of Oregon): IBM S822LC, two 10-core POWER8
  at 2.92 GHz, SMT-8 -> 160 hardware threads; no power-capping
  privilege and no energy counters (evaluation is time-only there).

All values are per the public spec sheets; the dynamic-power
coefficient is calibrated so that a fully-loaded package at base
frequency draws exactly TDP.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.units import GIB, KIB, MIB
from repro.util.validation import require_positive


@dataclass(frozen=True)
class CacheSpec:
    """Cache hierarchy geometry and latencies.

    Latencies are *stall* costs in nanoseconds charged per access that
    misses into the level (already discounted for out-of-order overlap
    via the memory-level-parallelism factor ``mlp``).
    """

    line_bytes: int = 64
    l1_bytes: int = 32 * KIB          # per core
    l2_bytes: int = 256 * KIB         # per core
    l3_bytes: int = 20 * MIB          # per socket (shared)
    l2_latency_ns: float = 3.5        # extra stall on an L1 miss hit in L2
    l3_latency_ns: float = 12.0       # extra stall on an L2 miss hit in L3
    dram_latency_ns: float = 65.0     # extra stall on an L3 miss
    mlp: float = 4.0                  # memory-level parallelism divisor

    def __post_init__(self) -> None:
        require_positive("line_bytes", self.line_bytes)
        require_positive("l1_bytes", self.l1_bytes)
        require_positive("l2_bytes", self.l2_bytes)
        require_positive("l3_bytes", self.l3_bytes)
        require_positive("mlp", self.mlp)


@dataclass(frozen=True)
class MachineSpec:
    """Description of a simulated node.

    ``smt_throughput[s-1]`` is the total instruction throughput of one
    core when ``s`` hardware threads are active on it, normalized to a
    single thread (e.g. ``(1.0, 1.3)`` for Sandy Bridge HT: two
    hyperthreads deliver 1.3x one thread, i.e. 0.65x each).
    """

    name: str
    sockets: int
    cores_per_socket: int
    smt_per_core: int
    base_freq_ghz: float
    min_freq_ghz: float
    turbo_freq_ghz: float
    tdp_w: float                       # per package
    static_power_w: float              # per package: uncore + leakage
    cache_power_w: float               # per package at base uncore freq
    idle_core_sleep_w: float           # deep-sleep core power
    idle_spin_fraction: float          # spin power as fraction of active
    sleep_transition_us: float         # enter+exit latency for deep sleep
    smt_throughput: tuple[float, ...]
    mem_bw_bytes_per_s: float          # per socket
    cache: CacheSpec = field(default_factory=CacheSpec)
    supports_power_cap: bool = True
    supports_energy_counters: bool = True
    #: fractional DRAM bandwidth loss per concurrent stream beyond the
    #: sweet spot (row-buffer / bank conflicts).
    stream_penalty: float = 0.07
    #: streams the memory controller handles at full efficiency.
    stream_sweet_spot: int = 6
    #: L1/L2 conflict-miss inflation per SMT sibling (and its cap) -
    #: POWER8's 8-way SMT is engineered for co-residency, Sandy Bridge
    #: HT much less so.
    smt_conflict_l1: float = 0.35
    smt_conflict_l1_cap: float = 1.6
    smt_conflict_l2: float = 0.25
    smt_conflict_l2_cap: float = 1.5
    #: per-thread execution jitter (OS noise, SMT partner interference)
    #: as a relative sigma; grows with SMT occupancy.  Static schedules
    #: eat it as barrier wait; dynamic/guided absorb it.
    thread_jitter_sigma: float = 0.008
    #: DRAM power model (the paper's future-work memory-power
    #: accounting): idle/refresh draw per socket plus energy per byte
    #: of DRAM traffic (~60 pJ/bit for DDR3 including IO).
    dram_static_w: float = 6.0
    dram_energy_j_per_byte: float = 60.0e-12 * 8

    def __post_init__(self) -> None:
        require_positive("sockets", self.sockets)
        require_positive("cores_per_socket", self.cores_per_socket)
        require_positive("smt_per_core", self.smt_per_core)
        require_positive("base_freq_ghz", self.base_freq_ghz)
        require_positive("tdp_w", self.tdp_w)
        if not (0 < self.min_freq_ghz <= self.base_freq_ghz
                <= self.turbo_freq_ghz):
            raise ValueError(
                "frequencies must satisfy 0 < min <= base <= turbo, got "
                f"{self.min_freq_ghz}/{self.base_freq_ghz}/"
                f"{self.turbo_freq_ghz}"
            )
        if len(self.smt_throughput) != self.smt_per_core:
            raise ValueError(
                f"smt_throughput must have {self.smt_per_core} entries, "
                f"got {len(self.smt_throughput)}"
            )
        if self.smt_throughput[0] != 1.0:
            raise ValueError("smt_throughput[0] must be 1.0")
        if any(b < a for a, b in zip(self.smt_throughput,
                                     self.smt_throughput[1:])):
            raise ValueError("smt_throughput must be non-decreasing")
        if self.static_power_w + self.cache_power_w >= self.tdp_w:
            raise ValueError("static + cache power must be below TDP")

    @property
    def total_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def total_hw_threads(self) -> int:
        return self.total_cores * self.smt_per_core

    @property
    def core_dyn_coeff_w_per_ghz3(self) -> float:
        """Per-core dynamic power coefficient kappa (W/GHz^3).

        Calibrated so all cores at base frequency plus static and cache
        power equal TDP per package:
        ``TDP = static + cache + cores * kappa * f_base^3``.
        """
        headroom = self.tdp_w - self.static_power_w - self.cache_power_w
        return headroom / (self.cores_per_socket * self.base_freq_ghz ** 3)

    def smt_per_thread_throughput(self, siblings_active: int) -> float:
        """Per-thread throughput when ``siblings_active`` threads share
        a core (1 -> 1.0; 2 on HT -> ~0.65; ...)."""
        if not 1 <= siblings_active <= self.smt_per_core:
            raise ValueError(
                f"siblings_active must be in [1, {self.smt_per_core}], "
                f"got {siblings_active}"
            )
        return self.smt_throughput[siblings_active - 1] / siblings_active


def crill() -> MachineSpec:
    """The paper's primary testbed: dual-socket Sandy Bridge Xeon E5-2665."""
    return MachineSpec(
        name="crill",
        sockets=2,
        cores_per_socket=8,
        smt_per_core=2,
        base_freq_ghz=2.4,
        min_freq_ghz=1.2,
        turbo_freq_ghz=3.1,
        tdp_w=115.0,
        static_power_w=22.0,
        cache_power_w=14.0,
        idle_core_sleep_w=0.6,
        idle_spin_fraction=0.72,
        sleep_transition_us=60.0,
        smt_throughput=(1.0, 1.3),
        mem_bw_bytes_per_s=48.0 * GIB,
        cache=CacheSpec(
            line_bytes=64,
            l1_bytes=32 * KIB,
            l2_bytes=256 * KIB,
            l3_bytes=20 * MIB,
            l2_latency_ns=3.5,
            l3_latency_ns=12.0,
            dram_latency_ns=65.0,
            mlp=4.0,
        ),
        supports_power_cap=True,
        supports_energy_counters=True,
    )


def minotaur() -> MachineSpec:
    """The paper's secondary testbed: IBM S822LC with two POWER8 CPUs.

    The paper had neither capping privilege nor energy-counter access
    on this machine, so ``supports_power_cap`` and
    ``supports_energy_counters`` are both False and all Minotaur
    experiments run at TDP and report time only.
    """
    return MachineSpec(
        name="minotaur",
        sockets=2,
        cores_per_socket=10,
        smt_per_core=8,
        base_freq_ghz=2.92,
        min_freq_ghz=2.0,
        turbo_freq_ghz=3.5,
        tdp_w=190.0,
        static_power_w=38.0,
        cache_power_w=24.0,
        idle_core_sleep_w=1.0,
        idle_spin_fraction=0.70,
        sleep_transition_us=40.0,
        smt_throughput=(1.0, 1.5, 1.9, 2.15, 2.3, 2.4, 2.48, 2.55),
        mem_bw_bytes_per_s=96.0 * GIB,
        cache=CacheSpec(
            line_bytes=128,
            l1_bytes=64 * KIB,
            l2_bytes=512 * KIB,
            l3_bytes=80 * MIB,
            l2_latency_ns=4.0,
            l3_latency_ns=10.0,
            dram_latency_ns=80.0,
            mlp=5.0,
        ),
        supports_power_cap=False,
        supports_energy_counters=False,
        stream_penalty=0.025,
        stream_sweet_spot=12,
        smt_conflict_l1=0.08,
        smt_conflict_l1_cap=1.3,
        smt_conflict_l2=0.06,
        smt_conflict_l2_cap=1.25,
        thread_jitter_sigma=0.045,
    )


_REGISTRY = {"crill": crill, "minotaur": minotaur}


def machine_by_name(name: str) -> MachineSpec:
    """Look up a machine spec by its lowercase name."""
    try:
        return _REGISTRY[name.lower()]()
    except KeyError:
        raise ValueError(
            f"unknown machine {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
