"""Simulated multicore node substrate.

The paper runs on two real machines (*Crill*: 2x 8-core Intel Sandy
Bridge Xeon E5, 2-way HT; *Minotaur*: 2x 10-core IBM POWER8, SMT-8) and
uses RAPL via libmsr for power capping and energy measurement.  This
package provides the simulated equivalents:

* :mod:`repro.machine.spec` - hardware descriptions plus the
  :func:`crill` and :func:`minotaur` factory functions;
* :mod:`repro.machine.topology` - thread-to-core placement with SMT;
* :mod:`repro.machine.frequency` - the DVFS solver mapping a package
  power cap to the highest sustainable core frequency;
* :mod:`repro.machine.power` - the package power model (static, cache,
  per-core dynamic, idle states);
* :mod:`repro.machine.cache` - analytic L1/L2/L3 miss-rate model;
* :mod:`repro.machine.memory` - DRAM bandwidth/queueing model;
* :mod:`repro.machine.msr` / :mod:`repro.machine.rapl` - a libmsr-like
  MSR register file and the RAPL power-cap/energy-counter interface;
* :mod:`repro.machine.node` - :class:`SimulatedNode`, tying it together.
"""

from repro.machine.cache import CacheModel, CacheTraffic
from repro.machine.frequency import FrequencyModel
from repro.machine.node import SimulatedNode
from repro.machine.power import IdleState, PowerModel
from repro.machine.rapl import Rapl, RaplDomain
from repro.machine.spec import CacheSpec, MachineSpec, crill, minotaur
from repro.machine.topology import Placement, Topology

__all__ = [
    "CacheModel",
    "CacheSpec",
    "CacheTraffic",
    "FrequencyModel",
    "IdleState",
    "MachineSpec",
    "Placement",
    "PowerModel",
    "Rapl",
    "RaplDomain",
    "SimulatedNode",
    "Topology",
    "crill",
    "minotaur",
]
