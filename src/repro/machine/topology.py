"""Thread-to-core placement.

The OpenMP team is placed the way a throughput-oriented runtime binds
threads: spread across sockets round-robin, fill distinct physical
cores first, and only then co-schedule SMT siblings.  Placement
determines (a) how many cores are active per socket (which feeds the
power/frequency model) and (b) each thread's SMT throughput factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.machine.spec import MachineSpec


@dataclass(frozen=True)
class ThreadSlot:
    """Where one OpenMP thread lands: socket, core within the socket,
    and its hardware-thread index on that core."""

    thread_id: int
    socket: int
    core: int          # core index within the socket
    smt_slot: int      # 0 = first hw thread on the core


@dataclass(frozen=True)
class Placement:
    """Full placement of an OpenMP team on a machine."""

    spec: MachineSpec
    slots: tuple[ThreadSlot, ...]

    @property
    def n_threads(self) -> int:
        return len(self.slots)

    @property
    def active_cores_per_socket(self) -> tuple[int, ...]:
        counts = [set() for _ in range(self.spec.sockets)]
        for slot in self.slots:
            counts[slot.socket].add(slot.core)
        return tuple(len(c) for c in counts)

    @property
    def threads_per_socket(self) -> tuple[int, ...]:
        counts = [0] * self.spec.sockets
        for slot in self.slots:
            counts[slot.socket] += 1
        return tuple(counts)

    def siblings_active(self, slot: ThreadSlot) -> int:
        """Number of team threads sharing ``slot``'s physical core."""
        return sum(
            1
            for other in self.slots
            if other.socket == slot.socket and other.core == slot.core
        )

    def per_thread_throughput(self) -> tuple[float, ...]:
        """SMT throughput factor for each thread (1.0 = full core)."""
        return tuple(
            self.spec.smt_per_thread_throughput(self.siblings_active(s))
            for s in self.slots
        )


class Topology:
    """Places OpenMP teams onto a :class:`MachineSpec`."""

    def __init__(self, spec: MachineSpec) -> None:
        self.spec = spec
        self._place_cached = lru_cache(maxsize=None)(self._place)

    def place(self, n_threads: int) -> Placement:
        """Place ``n_threads`` on the machine (scatter across sockets,
        physical cores before SMT siblings).

        Raises :class:`ValueError` if the team exceeds the machine's
        hardware-thread count — the simulator does not model OS
        oversubscription.
        """
        if not 1 <= n_threads <= self.spec.total_hw_threads:
            raise ValueError(
                f"n_threads must be in [1, {self.spec.total_hw_threads}] "
                f"on {self.spec.name}, got {n_threads}"
            )
        return self._place_cached(n_threads)

    def _place(self, n_threads: int) -> Placement:
        spec = self.spec
        slots: list[ThreadSlot] = []
        # Enumerate hardware-thread slots in scatter order: smt slot 0 on
        # (socket0,core0), (socket1,core0), (socket0,core1), ... then smt
        # slot 1 in the same core order, etc.
        tid = 0
        for smt_slot in range(spec.smt_per_core):
            for core in range(spec.cores_per_socket):
                for socket in range(spec.sockets):
                    if tid >= n_threads:
                        return Placement(spec=spec, slots=tuple(slots))
                    slots.append(
                        ThreadSlot(
                            thread_id=tid,
                            socket=socket,
                            core=core,
                            smt_slot=smt_slot,
                        )
                    )
                    tid += 1
        return Placement(spec=spec, slots=tuple(slots))
