"""Package power model.

Power is modelled per package (socket) as the paper's Section V
describes the hardware: *"cores and caches are the main power
consuming components of a processor; the total power of a processor is
divided between these two"*.

``P_pkg(f) = P_static + P_cache * (f / f_base) + n_active * kappa * f^3
            + n_spin * spin_fraction * kappa * f^3
            + n_sleep * P_sleep``

* active cores burn dynamic power cubic in frequency (f ~ V, P ~ f V^2);
* cores spinning at a barrier burn a large fraction of active power
  (``idle_spin_fraction``) - the paper notes short waits do not reach
  sleep states;
* deep-sleep cores burn a small constant, but entering/leaving sleep
  costs ``sleep_transition_us`` of wasted time and energy, which is why
  *"entering and exiting sleep states ... can cause negative savings if
  the idle duration is short"* (Section V).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.machine.spec import MachineSpec
from repro.util.units import us
from repro.util.validation import require_nonnegative


#: extra dynamic power an SMT sibling adds to an already-active core.
SMT_POWER_FACTOR = 0.15


class IdleState(Enum):
    """What a core does while it waits at a barrier."""

    SPIN = "spin"
    SLEEP = "sleep"


@dataclass(frozen=True)
class IdleAccounting:
    """Energy and effective-wait bookkeeping for one idle interval."""

    state: IdleState
    energy_j: float
    transition_s: float


class PowerModel:
    """Evaluates package power draw and idle-interval energy."""

    def __init__(self, spec: MachineSpec) -> None:
        self.spec = spec

    # ------------------------------------------------------------------
    # instantaneous power
    # ------------------------------------------------------------------
    def core_dynamic_w(self, freq_ghz: float) -> float:
        """Dynamic power of one fully-active core at ``freq_ghz``."""
        return self.spec.core_dyn_coeff_w_per_ghz3 * freq_ghz ** 3

    def uncore_w(self, freq_ghz: float) -> float:
        """Static plus cache (uncore) power of one package."""
        rel = freq_ghz / self.spec.base_freq_ghz
        return self.spec.static_power_w + self.spec.cache_power_w * rel

    def smt_power_multiplier(self, avg_siblings: float) -> float:
        """Dynamic-power multiplier for cores running ``avg_siblings``
        SMT threads each (1.0 for one thread per core)."""
        if avg_siblings < 1.0:
            raise ValueError(
                f"avg_siblings must be >= 1, got {avg_siblings}"
            )
        return 1.0 + SMT_POWER_FACTOR * (avg_siblings - 1.0)

    def package_power_w(
        self,
        freq_ghz: float,
        n_active: int,
        n_spin: int = 0,
        n_sleep: int | None = None,
        smt_mult: float = 1.0,
    ) -> float:
        """Total draw of one package.

        ``n_sleep`` defaults to the remaining cores of the package;
        ``smt_mult`` scales the active cores' dynamic power for SMT
        co-residency (see :meth:`smt_power_multiplier`).
        """
        require_nonnegative("n_active", n_active)
        require_nonnegative("n_spin", n_spin)
        if n_sleep is None:
            n_sleep = self.spec.cores_per_socket - n_active - n_spin
        require_nonnegative("n_sleep", n_sleep)
        if n_active + n_spin + n_sleep > self.spec.cores_per_socket:
            raise ValueError(
                "core states exceed cores per socket: "
                f"{n_active}+{n_spin}+{n_sleep} > "
                f"{self.spec.cores_per_socket}"
            )
        dyn = self.core_dynamic_w(freq_ghz)
        return (
            self.uncore_w(freq_ghz)
            + n_active * dyn * smt_mult
            + n_spin * self.spec.idle_spin_fraction * dyn
            + n_sleep * self.spec.idle_core_sleep_w
        )

    # ------------------------------------------------------------------
    # idle intervals (barrier waits)
    # ------------------------------------------------------------------
    #: Governor heuristic: a core only enters deep sleep when the
    #: expected wait exceeds this many transition times; shorter waits
    #: spin (the Section V "short OpenMP waits don't reach sleep" case).
    SLEEP_BREAKEVEN_MULTIPLIER = 3.0

    def sleep_worthwhile_s(self, freq_ghz: float) -> float:
        """Wait duration above which the governor puts a core to sleep."""
        dyn = self.core_dynamic_w(freq_ghz)
        spin_w = self.spec.idle_spin_fraction * dyn
        if spin_w <= self.spec.idle_core_sleep_w:
            return float("inf")
        return self.SLEEP_BREAKEVEN_MULTIPLIER * us(
            self.spec.sleep_transition_us
        )

    def idle_interval(
        self, wait_s: float, freq_ghz: float
    ) -> IdleAccounting:
        """Energy burnt by one core waiting ``wait_s`` at a barrier."""
        require_nonnegative("wait_s", wait_s)
        dyn = self.core_dynamic_w(freq_ghz)
        spin_w = self.spec.idle_spin_fraction * dyn
        transition = us(self.spec.sleep_transition_us)
        if wait_s <= self.sleep_worthwhile_s(freq_ghz):
            return IdleAccounting(
                state=IdleState.SPIN,
                energy_j=wait_s * spin_w,
                transition_s=0.0,
            )
        sleep_time = max(0.0, wait_s - transition)
        energy = transition * spin_w + sleep_time * self.spec.idle_core_sleep_w
        return IdleAccounting(
            state=IdleState.SLEEP, energy_j=energy, transition_s=transition
        )
