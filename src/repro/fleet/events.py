"""Typed fleet events: the single vocabulary for everything a fleet
run does to survive.

Every membership transition, budget action and fleet-tier fault
consequence is recorded as one :class:`FleetEvent` - the fleet-level
analogue of ``StrategyRunResult.degradations``.  Events are what the
chaos harness and the survival-rate analysis table consume, so the
``kind`` strings here are a stable contract: every ``fleet.*`` fault
site maps to at least one degradation kind (see
:data:`FAULT_DEGRADATIONS`), which is how tests prove that no injected
failure is ever swallowed silently.
"""

from __future__ import annotations

from dataclasses import dataclass

#: event kinds that represent degraded (not merely routine) behaviour.
DEGRADATION_KINDS: frozenset[str] = frozenset(
    {
        "node_crashed",
        "node_hang",
        "node_suspect",
        "node_dead",
        "node_revived",
        "node_quarantined",
        "node_parked",
        "cap_write_failed",
        "telemetry_drop",
        "telemetry_partition",
        "membership_flap",
        "allocation_held",
        "tuning_degraded",
    }
)

#: fleet fault site/action -> the degradation kind its firing must
#: surface as.  The chaos harness asserts this mapping end to end.
FAULT_DEGRADATIONS: dict[tuple[str, str], str] = {
    ("fleet.node", "crash"): "node_crashed",
    ("fleet.node", "hang"): "node_hang",
    ("fleet.telemetry", "drop"): "telemetry_drop",
    ("fleet.telemetry", "partition"): "telemetry_partition",
    ("fleet.cap_write", "reject"): "cap_write_failed",
    ("fleet.membership", "flap"): "membership_flap",
}


@dataclass(frozen=True)
class FleetEvent:
    """One thing that happened to the fleet at one step.

    ``node`` is empty for fleet-global events (e.g. a total telemetry
    blackout holding the previous allocation).
    """

    step: int
    kind: str
    node: str = ""
    detail: str = ""

    @property
    def degradation(self) -> bool:
        return self.kind in DEGRADATION_KINDS

    def to_json(self) -> list:
        return [self.step, self.kind, self.node, self.detail]

    @classmethod
    def from_json(cls, blob: list) -> "FleetEvent":
        step, kind, node, detail = blob
        return cls(int(step), str(kind), str(node), str(detail))
