"""Fleet plans: the declarative description of one cluster run.

A :class:`FleetPlan` is to the fleet simulation what
:class:`~repro.experiments.runner.ExperimentSetup` is to one node: it
fully determines the run.  It names every node (machine spec,
application, staggered start, per-node seed salt), the global power
budget, and the allocator / membership tuning knobs.  Plans serialize
to JSON (``repro fleet run --plan fleetplan.json``,
``examples/fleetplan.json``) and carry a content fingerprint used by
the fleet journal header so ``--resume`` refuses a journal written by
a different fleet.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from pathlib import Path

from repro.machine.spec import MachineSpec, machine_by_name


class FleetPlanError(ValueError):
    """A fleet plan (or plan file) is malformed."""


@dataclass(frozen=True)
class FleetNodeSpec:
    """One node of the fleet.

    ``start_step`` staggers admission; ``work_steps`` is how much
    workload the node must complete (in steps of full-speed progress)
    after its local ARCS tuning; ``timesteps`` bounds the application
    used for the node's local tuning runs (small by default - fleet
    steps are coarse next to region invocations).
    """

    node_id: str
    machine: str = "crill"
    app: str = "synthetic"
    workload: str | None = None
    start_step: int = 0
    work_steps: int = 10
    timesteps: int = 6

    def __post_init__(self) -> None:
        if not self.node_id:
            raise FleetPlanError("node_id must be non-empty")
        try:
            machine_by_name(self.machine)
        except ValueError as exc:
            raise FleetPlanError(str(exc)) from exc
        if self.start_step < 0:
            raise FleetPlanError(
                f"start_step must be >= 0, got {self.start_step}"
            )
        if self.work_steps < 1:
            raise FleetPlanError(
                f"work_steps must be >= 1, got {self.work_steps}"
            )
        if self.timesteps < 1:
            raise FleetPlanError(
                f"timesteps must be >= 1, got {self.timesteps}"
            )

    @property
    def spec(self) -> MachineSpec:
        return machine_by_name(self.machine)

    def to_json(self) -> dict:
        return {
            "node_id": self.node_id,
            "machine": self.machine,
            "app": self.app,
            "workload": self.workload,
            "start_step": self.start_step,
            "work_steps": self.work_steps,
            "timesteps": self.timesteps,
        }

    @classmethod
    def from_json(cls, blob: dict) -> "FleetNodeSpec":
        if not isinstance(blob, dict):
            raise FleetPlanError(
                f"node spec must be an object, got {type(blob).__name__}"
            )
        unknown = set(blob) - {
            "node_id", "machine", "app", "workload", "start_step",
            "work_steps", "timesteps",
        }
        if unknown:
            raise FleetPlanError(
                f"unknown node-spec field(s): {sorted(unknown)}"
            )
        try:
            return cls(
                node_id=str(blob["node_id"]),
                machine=str(blob.get("machine", "crill")),
                app=str(blob.get("app", "synthetic")),
                workload=(
                    None
                    if blob.get("workload") is None
                    else str(blob["workload"])
                ),
                start_step=int(blob.get("start_step", 0)),
                work_steps=int(blob.get("work_steps", 10)),
                timesteps=int(blob.get("timesteps", 6)),
            )
        except KeyError as exc:
            raise FleetPlanError(
                f"node spec is missing required field {exc.args[0]!r}"
            ) from None


@dataclass(frozen=True)
class FleetPlan:
    """Everything defining one fleet run (the unit the CLI loads)."""

    nodes: tuple[FleetNodeSpec, ...]
    global_cap_w: float
    max_steps: int = 200
    seed: int = 0
    #: budget allocator knobs: caps are quantized down to multiples of
    #: ``quantum_w`` (keeps the per-(spec, cap) evaluation memo hot
    #: across nodes), each cappable node is guaranteed
    #: ``min_cap_fraction * TDP``, and changes smaller than
    #: ``hysteresis_w`` or sooner than ``hysteresis_steps`` after the
    #: node's last change are deferred and coalesced to the latest
    #: target (the :mod:`repro.core.capschedule` semantics).
    quantum_w: float = 5.0
    min_cap_fraction: float = 0.5
    hysteresis_w: float = 5.0
    hysteresis_steps: int = 2
    #: membership knobs: heartbeats missed before suspect / dead, the
    #: window and transition count that flag a flapping node, and how
    #: long a flapper stays quarantined.
    suspect_after: int = 2
    dead_after: int = 4
    flap_window: int = 8
    flap_threshold: int = 3
    quarantine_steps: int = 6
    #: steps a node stays power-gated after a failed cap write.
    park_steps: int = 2

    def __post_init__(self) -> None:
        object.__setattr__(self, "nodes", tuple(self.nodes))
        if not self.nodes:
            raise FleetPlanError("a fleet needs at least one node")
        ids = [n.node_id for n in self.nodes]
        if len(set(ids)) != len(ids):
            dupes = sorted({i for i in ids if ids.count(i) > 1})
            raise FleetPlanError(f"duplicate node_id(s): {dupes}")
        if self.global_cap_w <= 0:
            raise FleetPlanError(
                f"global_cap_w must be positive, got {self.global_cap_w}"
            )
        if self.max_steps < 1:
            raise FleetPlanError(
                f"max_steps must be >= 1, got {self.max_steps}"
            )
        if self.quantum_w <= 0:
            raise FleetPlanError(
                f"quantum_w must be positive, got {self.quantum_w}"
            )
        if not 0.0 < self.min_cap_fraction <= 1.0:
            raise FleetPlanError(
                "min_cap_fraction must be in (0, 1], got "
                f"{self.min_cap_fraction}"
            )
        for name in (
            "hysteresis_steps", "suspect_after", "dead_after",
            "flap_window", "flap_threshold", "quarantine_steps",
            "park_steps",
        ):
            if getattr(self, name) < 1:
                raise FleetPlanError(
                    f"{name} must be >= 1, got {getattr(self, name)}"
                )
        if self.hysteresis_w < 0:
            raise FleetPlanError(
                f"hysteresis_w must be >= 0, got {self.hysteresis_w}"
            )
        if self.dead_after <= self.suspect_after:
            raise FleetPlanError(
                "dead_after must exceed suspect_after "
                f"({self.dead_after} <= {self.suspect_after})"
            )

    # ------------------------------------------------------------------
    def min_cap_w(self, spec: MachineSpec) -> float:
        """Guaranteed floor for a cappable node: ``min_cap_fraction *
        TDP`` rounded *up* to the quantum (so quantizing a share down
        never dips below the floor)."""
        raw = spec.tdp_w * self.min_cap_fraction
        return math.ceil(raw / self.quantum_w) * self.quantum_w

    def to_json(self) -> dict:
        return {
            "global_cap_w": self.global_cap_w,
            "max_steps": self.max_steps,
            "seed": self.seed,
            "quantum_w": self.quantum_w,
            "min_cap_fraction": self.min_cap_fraction,
            "hysteresis_w": self.hysteresis_w,
            "hysteresis_steps": self.hysteresis_steps,
            "suspect_after": self.suspect_after,
            "dead_after": self.dead_after,
            "flap_window": self.flap_window,
            "flap_threshold": self.flap_threshold,
            "quarantine_steps": self.quarantine_steps,
            "park_steps": self.park_steps,
            "nodes": [n.to_json() for n in self.nodes],
        }

    @classmethod
    def from_json(cls, blob: dict) -> "FleetPlan":
        if not isinstance(blob, dict):
            raise FleetPlanError(
                f"fleet plan must be a JSON object, got "
                f"{type(blob).__name__}"
            )
        known = {
            "global_cap_w", "max_steps", "seed", "quantum_w",
            "min_cap_fraction", "hysteresis_w", "hysteresis_steps",
            "suspect_after", "dead_after", "flap_window",
            "flap_threshold", "quarantine_steps", "park_steps", "nodes",
        }
        unknown = set(blob) - known
        if unknown:
            raise FleetPlanError(
                f"unknown fleet-plan field(s): {sorted(unknown)}"
            )
        nodes = blob.get("nodes")
        if not isinstance(nodes, list):
            raise FleetPlanError("'nodes' must be a list of node specs")
        try:
            cap = float(blob["global_cap_w"])
        except KeyError:
            raise FleetPlanError(
                "fleet plan is missing required field 'global_cap_w'"
            ) from None
        defaults = {
            f.name: f.default
            for f in cls.__dataclass_fields__.values()
            if f.name not in ("nodes", "global_cap_w")
        }
        kwargs = {
            name: type(default)(blob.get(name, default))
            for name, default in defaults.items()
        }
        return cls(
            nodes=tuple(FleetNodeSpec.from_json(n) for n in nodes),
            global_cap_w=cap,
            **kwargs,
        )


def load_fleet_plan(path: str | Path) -> FleetPlan:
    """Load a :class:`FleetPlan` from JSON, raising
    :class:`FleetPlanError` naming the path on any problem."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise FleetPlanError(
            f"cannot read fleet plan {path}: {exc}"
        ) from exc
    try:
        blob = json.loads(text)
    except json.JSONDecodeError as exc:
        raise FleetPlanError(
            f"fleet plan {path} is not valid JSON: {exc}"
        ) from exc
    try:
        return FleetPlan.from_json(blob)
    except FleetPlanError as exc:
        raise FleetPlanError(f"fleet plan {path}: {exc}") from None


def save_fleet_plan(plan: FleetPlan, path: str | Path) -> None:
    Path(path).write_text(json.dumps(plan.to_json(), indent=2) + "\n")


def fleet_plan_fingerprint(plan: FleetPlan) -> str:
    """Short content fingerprint (journal-header identity)."""
    blob = json.dumps(
        plan.to_json(), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def synthesize_fleet(
    n_nodes: int,
    global_cap_w: float | None = None,
    *,
    seed: int = 0,
    max_steps: int = 200,
    **knobs,
) -> FleetPlan:
    """A deterministic mixed roster for ``repro fleet run --nodes N``.

    Every fourth node is Minotaur-like (no capping privilege - it is
    accounted at fixed TDP), the rest Crill-like; starts are staggered
    over the first few steps and workloads vary slightly in length so
    completions spread out.  The default global budget is ~75% of the
    roster's summed TDP: enough for every node to run, tight enough
    that the allocator has real redistribution work to do.
    """
    if n_nodes < 1:
        raise FleetPlanError(f"n_nodes must be >= 1, got {n_nodes}")
    nodes = []
    width = len(str(n_nodes - 1))
    for i in range(n_nodes):
        machine = "minotaur" if i % 4 == 3 else "crill"
        nodes.append(
            FleetNodeSpec(
                node_id=f"node{i:0{width}d}",
                machine=machine,
                start_step=(i % 5) + 1,
                work_steps=8 + 2 * (i % 3),
            )
        )
    if global_cap_w is None:
        total_tdp = sum(n.spec.tdp_w for n in nodes)
        global_cap_w = math.ceil(0.75 * total_tdp)
    return FleetPlan(
        nodes=tuple(nodes),
        global_cap_w=float(global_cap_w),
        max_steps=max_steps,
        seed=seed,
        **knobs,
    )
