"""Crash-safe fleet journal: resume a killed fleet run byte-identically.

Same durability contract as :class:`~repro.experiments.journal.
SweepJournal` and the run checkpoints: an append-only JSONL file whose
first line is a ``kind: "header"`` identity record (fleet-plan and
fault-plan fingerprints, seed, global cap) and whose subsequent lines
are one *complete* simulation snapshot per finished step - node cells,
allocator, membership, fault-injector counters and the cumulative
event log - flushed and fsynced before the step is considered done.

Because every snapshot is self-contained, resume only needs the last
intact line: restore it, continue from ``step + 1``, and the final
:class:`~repro.fleet.sim.FleetResult` JSON is byte-identical to an
uninterrupted run.  A torn tail (crash mid-append) is truncated away
on load exactly like the sweep journal's; a header written by a
*different* fleet (other plan, faults or seed) raises
:class:`FleetJournalMismatchError` instead of silently mixing runs.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

#: bump when the snapshot layout changes; mismatched lines are ignored.
FLEET_JOURNAL_SCHEMA = 1


class FleetJournalMismatchError(ValueError):
    """The journal on disk belongs to a different fleet run."""


class FleetJournal:
    """Append-only per-step snapshot log for one fleet invocation."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    # ------------------------------------------------------------------
    def read_header(self) -> dict | None:
        try:
            data = self.path.read_bytes()
        except FileNotFoundError:
            return None
        for raw in data.splitlines():
            line = raw.decode(errors="replace").strip()
            if not line:
                continue
            try:
                blob = json.loads(line)
            except json.JSONDecodeError:
                return None
            if isinstance(blob, dict) and blob.get("kind") == "header":
                header = dict(blob)
                header.pop("schema", None)
                header.pop("kind", None)
                return header
            return None
        return None

    def write_header(self, header: dict) -> None:
        self._append_line(
            {
                "schema": FLEET_JOURNAL_SCHEMA,
                "kind": "header",
                **header,
            }
        )

    def check_header(self, expected: dict) -> None:
        """Refuse to resume into a journal another fleet wrote."""
        found = self.read_header()
        if found is None:
            raise FleetJournalMismatchError(
                f"journal {self.path} has no fleet header; it was not "
                "written by 'repro fleet run --journal'"
            )
        mismatched = sorted(
            key
            for key in set(expected) | set(found)
            if expected.get(key) != found.get(key)
        )
        if mismatched:
            raise FleetJournalMismatchError(
                f"journal {self.path} was written by a different fleet "
                f"run (mismatched: {', '.join(mismatched)}); use a "
                "fresh --journal path or re-run with the original plan"
            )

    # ------------------------------------------------------------------
    def load_last_snapshot(self) -> tuple[int, dict] | None:
        """The newest intact ``(step, state)`` snapshot, or ``None``.

        Scans forward keeping the last parseable snapshot; a torn or
        unparsable line ends the scan and is truncated away so future
        appends land on an intact prefix.
        """
        try:
            data = self.path.read_bytes()
        except FileNotFoundError:
            return None
        latest: tuple[int, dict] | None = None
        valid_bytes = 0
        for raw in data.splitlines(keepends=True):
            line = raw.decode(errors="replace").strip()
            if not line:
                valid_bytes += len(raw)
                continue
            try:
                blob = json.loads(line)
                if (
                    not isinstance(blob, dict)
                    or blob.get("schema") != FLEET_JOURNAL_SCHEMA
                ):
                    valid_bytes += len(raw)
                    continue
                if blob.get("kind") == "header":
                    valid_bytes += len(raw)
                    continue
                latest = (int(blob["step"]), blob["state"])
            except (json.JSONDecodeError, KeyError, TypeError,
                    ValueError):
                with open(self.path, "r+b") as handle:
                    handle.truncate(valid_bytes)
                break
            valid_bytes += len(raw)
        return latest

    def append_snapshot(self, step: int, state: dict) -> None:
        """Record one finished step durably (flush + fsync)."""
        self._append_line(
            {
                "schema": FLEET_JOURNAL_SCHEMA,
                "step": step,
                "state": state,
            }
        )

    def _append_line(self, record: dict) -> None:
        line = json.dumps(record, separators=(",", ":"))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def clear(self) -> None:
        """Start over (a fresh, non-resumed fleet run)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text("")
