"""Health-tracking fleet membership: suspect -> dead on missed
heartbeats, quarantine for flappers.

Each fleet step the simulation tells the tracker which nodes'
telemetry reports actually arrived.  A node that misses
``suspect_after`` consecutive heartbeats becomes *suspect* (it keeps
its last-known-good allocation - the graceful-degradation half of the
contract), after ``dead_after`` it is declared *dead* and its power
share is reclaimed and redistributed.  A dead node that reports again
(a healed partition, a recovered straggler) is *revived* - but a node
whose reachability flips ``flap_threshold`` times inside
``flap_window`` steps is *quarantined* for ``quarantine_steps``: the
membership analogue of cap-schedule hysteresis, so a flapping member
cannot make the allocator thrash.  Every transition is emitted as a
typed :class:`~repro.fleet.events.FleetEvent`.

The tracker deliberately knows nothing about *why* a heartbeat is
missing (crash, hang, telemetry partition, flap fault) - like any real
failure detector it only sees silence, and the chaos tests exercise
exactly that ambiguity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fleet.events import FleetEvent
from repro.fleet.plan import FleetPlan

ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"
QUARANTINED = "quarantined"


@dataclass
class _Member:
    state: str
    last_seen: int
    #: steps at which reachability flipped (for flap detection).
    transitions: list[int] = field(default_factory=list)
    quarantine_until: int = 0

    def to_json(self) -> dict:
        return {
            "state": self.state,
            "last_seen": self.last_seen,
            "transitions": list(self.transitions),
            "quarantine_until": self.quarantine_until,
        }

    @classmethod
    def from_json(cls, blob: dict) -> "_Member":
        return cls(
            state=str(blob["state"]),
            last_seen=int(blob["last_seen"]),
            transitions=[int(t) for t in blob["transitions"]],
            quarantine_until=int(blob["quarantine_until"]),
        )


class MembershipTracker:
    """Failure detector + flap damper for one fleet."""

    def __init__(self, plan: FleetPlan) -> None:
        self.plan = plan
        self._members: dict[str, _Member] = {}

    # ------------------------------------------------------------------
    def admit(self, node_id: str, step: int) -> None:
        self._members[node_id] = _Member(state=ALIVE, last_seen=step)

    def remove(self, node_id: str) -> None:
        """Clean departure (node finished its workload)."""
        self._members.pop(node_id, None)

    def state(self, node_id: str) -> str | None:
        member = self._members.get(node_id)
        return None if member is None else member.state

    def live(self) -> list[str]:
        """Members whose power share is currently accounted: alive or
        suspect (a suspect keeps its last-known-good allocation)."""
        return sorted(
            n
            for n, m in self._members.items()
            if m.state in (ALIVE, SUSPECT)
        )

    def members(self) -> list[str]:
        return sorted(self._members)

    # ------------------------------------------------------------------
    def observe(
        self, step: int, reported: set[str]
    ) -> list[FleetEvent]:
        """Advance every member's health from this step's delivered
        heartbeats; returns the transition events (roster order)."""
        plan = self.plan
        events: list[FleetEvent] = []
        for node_id in sorted(self._members):
            member = self._members[node_id]
            heard = node_id in reported
            if member.state == QUARANTINED:
                if heard:
                    member.last_seen = step
                if step >= member.quarantine_until:
                    member.state = ALIVE if heard else SUSPECT
                    member.last_seen = step
                    member.transitions.clear()
                    events.append(
                        FleetEvent(
                            step, "quarantine_lifted", node_id,
                            f"re-admitted as {member.state}",
                        )
                    )
                continue
            if heard:
                if member.state in (SUSPECT, DEAD):
                    member.transitions.append(step)
                    was = member.state
                    member.state = ALIVE
                    if was == DEAD:
                        events.append(
                            FleetEvent(
                                step, "node_revived", node_id,
                                "heartbeat after being declared dead",
                            )
                        )
                    if self._flapping(member, step):
                        member.state = QUARANTINED
                        member.quarantine_until = (
                            step + plan.quarantine_steps
                        )
                        events.append(
                            FleetEvent(
                                step, "node_quarantined", node_id,
                                f"{len(member.transitions)} reachability"
                                f" flips in {plan.flap_window} steps; "
                                f"quarantined for "
                                f"{plan.quarantine_steps}",
                            )
                        )
                member.last_seen = step
                continue
            missed = step - member.last_seen
            if member.state == ALIVE and missed >= plan.suspect_after:
                member.state = SUSPECT
                member.transitions.append(step)
                events.append(
                    FleetEvent(
                        step, "node_suspect", node_id,
                        f"{missed} heartbeats missed; holding "
                        "last-known-good allocation",
                    )
                )
            if (
                member.state == SUSPECT
                and missed >= plan.dead_after
            ):
                member.state = DEAD
                events.append(
                    FleetEvent(
                        step, "node_dead", node_id,
                        f"{missed} heartbeats missed; power share "
                        "reclaimed",
                    )
                )
        return events

    def _flapping(self, member: _Member, step: int) -> bool:
        window_start = step - self.plan.flap_window
        recent = [t for t in member.transitions if t > window_start]
        member.transitions[:] = recent
        return len(recent) >= self.plan.flap_threshold

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        return {
            node_id: member.to_json()
            for node_id, member in sorted(self._members.items())
        }

    def restore(self, blob: dict) -> None:
        self._members = {
            str(node_id): _Member.from_json(member)
            for node_id, member in blob.items()
        }
