"""Fleet simulation: many ARCS nodes under one global power budget.

The paper tunes one node under one cap; this package scales the same
control loop to a *cluster*: N simulated nodes (mixed Crill /
Minotaur-like specs) run staggered workloads, each driving ARCS
locally, while a hierarchical budget allocator redistributes per-node
caps from node telemetry under the invariant ``sum(live node caps) <=
global cap`` at every step - including while nodes crash, hang,
straggle, stop reporting, or flap in and out of the membership.

Public API::

    from repro.fleet import (
        FleetPlan, FleetNodeSpec, load_fleet_plan, synthesize_fleet,
        FleetSimulation, FleetResult, fleet_result_to_json,
        FleetJournal, FleetJournalMismatchError,
        BudgetAllocator, BudgetInvariantError,
        MembershipTracker, FleetEvent,
    )
"""

from repro.fleet.allocator import BudgetAllocator, BudgetInvariantError
from repro.fleet.events import DEGRADATION_KINDS, FleetEvent
from repro.fleet.journal import FleetJournal, FleetJournalMismatchError
from repro.fleet.membership import MembershipTracker
from repro.fleet.plan import (
    FleetNodeSpec,
    FleetPlan,
    FleetPlanError,
    fleet_plan_fingerprint,
    load_fleet_plan,
    save_fleet_plan,
    synthesize_fleet,
)
from repro.fleet.sim import (
    FleetResult,
    FleetSimulation,
    fleet_result_to_json,
    render_fleet,
    run_fleet,
)

__all__ = [
    "BudgetAllocator",
    "BudgetInvariantError",
    "DEGRADATION_KINDS",
    "FleetEvent",
    "FleetJournal",
    "FleetJournalMismatchError",
    "FleetNodeSpec",
    "FleetPlan",
    "FleetPlanError",
    "FleetResult",
    "FleetSimulation",
    "MembershipTracker",
    "fleet_plan_fingerprint",
    "fleet_result_to_json",
    "load_fleet_plan",
    "render_fleet",
    "run_fleet",
    "save_fleet_plan",
    "synthesize_fleet",
]
