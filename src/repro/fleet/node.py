"""One fleet node-cell: a simulated machine driving ARCS locally.

A cell owns everything node-local: the machine spec, the (reduced)
application its workload runs, the per-cap tuned results and the
workload progress counter.  When the allocator hands the node a new
cap level the cell re-tunes with ARCS-Offline at that level - the
per-node memo below plus the process-wide content-keyed evaluation
memo (:mod:`repro.openmp.batch`) make a re-tune at a previously seen
(spec, cap) pair nearly free, across *and within* nodes, which is why
the allocator quantizes caps to a small set of levels.

Tuning that fails to converge degrades to the default configuration
(recorded as a ``tuning_degraded`` event) instead of killing the node:
a fleet member with a sick search is still a fleet member.

Cells are deliberately snapshot-friendly: every field round-trips
through JSON scalars so the fleet journal can persist the whole fleet
each step.
"""

from __future__ import annotations

import dataclasses

from repro.core.capschedule import cap_label
from repro.experiments.runner import (
    ExperimentSetup,
    TuningDidNotConverge,
    run_strategy,
)
from repro.fleet.events import FleetEvent
from repro.fleet.plan import FleetNodeSpec, FleetPlan
from repro.machine.spec import MachineSpec
from repro.util.rng import derive_seed
from repro.workloads.registry import application_by_name

#: terminal statuses: the node is out of the fleet for good.
TERMINAL = ("done", "crashed")


class NodeCell:
    """Runtime state of one fleet node."""

    def __init__(self, spec: FleetNodeSpec, plan: FleetPlan) -> None:
        self.node_spec = spec
        self.plan = plan
        self.machine: MachineSpec = spec.spec
        #: pending -> waiting (admitted, no cap yet) -> running ->
        #: done | crashed.
        self.status = "pending"
        #: confirmed cap (W); None for un-cappable nodes (TDP runs).
        self.cap_w: float | None = None
        #: cap label -> tuned measurement at that level.
        self.tuned: dict[str, dict] = {}
        self.progress = 0.0
        self.retunes = 0
        #: fault windows, maintained by the simulation loop.
        self.hang_until = 0
        self.partition_until = 0
        self.flap_until = 0
        self.flap_start = 0

    # ------------------------------------------------------------------
    @property
    def node_id(self) -> str:
        return self.node_spec.node_id

    @property
    def cappable(self) -> bool:
        return self.machine.supports_power_cap

    def current_label(self) -> str:
        return cap_label(self.cap_w)

    def needs_tune(self) -> bool:
        if self.status != "running":
            return False
        return self.current_label() not in self.tuned

    def done(self) -> bool:
        return self.progress + 1e-9 >= self.node_spec.work_steps

    # ------------------------------------------------------------------
    def tune(self) -> list[FleetEvent]:
        """Tune locally (ARCS-Offline) at the current cap level.

        Runs in a worker thread under the fleet's asyncio fan-out; it
        touches only this cell plus the process-wide evaluation memo,
        whose hit/miss equivalence is proven by the batch test wall.
        """
        label = self.current_label()
        app = application_by_name(
            self.node_spec.app, self.node_spec.workload
        )
        if app.timesteps > self.node_spec.timesteps:
            app = dataclasses.replace(
                app, timesteps=self.node_spec.timesteps
            )
        setup = ExperimentSetup(
            spec=self.machine,
            cap_w=self.cap_w,
            repeats=1,
            seed=derive_seed(
                self.plan.seed, "fleet-node", self.node_id, label
            ),
        )
        events: list[FleetEvent] = []
        first = not self.tuned
        try:
            result = run_strategy("arcs-offline", app, setup)
            degraded = False
        except TuningDidNotConverge as exc:
            result = run_strategy("default", app, setup)
            degraded = True
            events.append(
                FleetEvent(
                    0, "tuning_degraded", self.node_id,
                    f"{label}: {type(exc).__name__}; pinned to the "
                    "default configuration",
                )
            )
        power = None
        if result.energy_j is not None and result.time_s > 0:
            power = result.energy_j / result.time_s
            if self.cap_w is not None:
                power = min(power, self.cap_w)
        self.tuned[label] = {
            "time_s": result.time_s,
            "power_w": power,
            "tuning_runs": result.tuning_runs,
            "degraded": degraded,
        }
        if not first:
            self.retunes += 1
        return events

    # ------------------------------------------------------------------
    def progress_step(self) -> None:
        """One fleet step of workload at the current tuned speed.

        Progress is normalized so a node at its fastest known cap
        level advances one work-step per fleet step; lower caps run
        proportionally slower (the tuned times encode exactly that
        trade-off).
        """
        entry = self.tuned.get(self.current_label())
        if entry is None:  # not tuned yet: no progress this step
            return
        best = min(t["time_s"] for t in self.tuned.values())
        speed = best / entry["time_s"] if entry["time_s"] > 0 else 1.0
        self.progress = round(self.progress + speed, 9)
        if self.done():
            self.status = "done"

    def report(self, step: int) -> dict:
        """The node's heartbeat/telemetry record for this step."""
        entry = self.tuned.get(self.current_label())
        if entry is not None and entry["power_w"] is not None:
            power = entry["power_w"]
        elif self.cap_w is not None:
            power = self.cap_w
        else:
            power = self.machine.tdp_w
        return {
            "node": self.node_id,
            "step": step,
            "power_w": power,
            "progress": self.progress,
            "status": self.status,
        }

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "status": self.status,
            "cap_w": self.cap_w,
            "tuned": {
                label: dict(entry)
                for label, entry in sorted(self.tuned.items())
            },
            "progress": self.progress,
            "retunes": self.retunes,
            "hang_until": self.hang_until,
            "partition_until": self.partition_until,
            "flap_until": self.flap_until,
            "flap_start": self.flap_start,
        }

    def restore(self, blob: dict) -> None:
        self.status = str(blob["status"])
        cap = blob["cap_w"]
        self.cap_w = None if cap is None else float(cap)
        self.tuned = {
            str(label): {
                "time_s": float(entry["time_s"]),
                "power_w": (
                    None
                    if entry["power_w"] is None
                    else float(entry["power_w"])
                ),
                "tuning_runs": int(entry["tuning_runs"]),
                "degraded": bool(entry["degraded"]),
            }
            for label, entry in blob["tuned"].items()
        }
        self.progress = float(blob["progress"])
        self.retunes = int(blob["retunes"])
        self.hang_until = int(blob["hang_until"])
        self.partition_until = int(blob["partition_until"])
        self.flap_until = int(blob["flap_until"])
        self.flap_start = int(blob["flap_start"])
