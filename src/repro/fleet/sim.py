"""The fleet simulation loop: N ARCS nodes under one global budget.

One :class:`FleetSimulation` step is one heartbeat interval of the
cluster.  In strict, deterministic order it:

1. admits staggered nodes into the membership;
2. polls the ``fleet.node`` fault site per active node (crash / hang);
3. asks the :class:`~repro.fleet.allocator.BudgetAllocator` for this
   step's per-node caps (from live membership + last-known telemetry)
   and applies them - each cap write retried via
   :class:`~repro.util.retry.RetryPolicy` against injected
   ``fleet.cap_write`` rejections, with a node whose write cannot land
   power-gated ("parked") rather than left violating the budget;
4. checks the budget invariant and records the accounted power;
5. advances node-cells: cells needing a (re-)tune at their new cap
   level run ARCS locally under an asyncio fan-out (same-spec nodes at
   the same quantized cap share work through the process-wide
   evaluation memo), everyone else makes workload progress;
6. collects heartbeat reports, losing them to ``fleet.telemetry``
   (drop / partition) and ``fleet.membership`` (flap) faults;
7. feeds the delivered heartbeats to the
   :class:`~repro.fleet.membership.MembershipTracker` and records
   allocator reaction latency for every declared death.

Everything observable - every fault consequence, membership
transition, budget action - is a typed
:class:`~repro.fleet.events.FleetEvent` (mirrored onto the telemetry
bus when enabled), and after every step the full fleet state is
journaled durably so a killed run resumes byte-identically.

Concurrency note: the tuning fan-out uses worker threads, which is
safe because each cell tunes against its own simulated node and the
process-wide memo is hit/miss-equivalent by contract; when the
telemetry bus is enabled the fan-out is forced serial so the bus's
sequence numbers - and therefore the JSONL logs - stay byte-identical
run to run.
"""

from __future__ import annotations

import asyncio
import os
from dataclasses import dataclass

from repro.faults.inject import FaultInjector, make_injector
from repro.faults.plan import (
    DEFAULT_FLEET_FLAP_STEPS,
    DEFAULT_FLEET_HANG_STEPS,
    DEFAULT_FLEET_PARTITION_STEPS,
    FaultPlan,
    plan_fingerprint,
)
from repro.fleet.allocator import BudgetAllocator, NodeBudgetInfo
from repro.fleet.events import FleetEvent
from repro.fleet.journal import FleetJournal
from repro.fleet.membership import (
    DEAD,
    QUARANTINED,
    MembershipTracker,
)
from repro.fleet.node import TERMINAL, NodeCell
from repro.fleet.plan import FleetPlan, fleet_plan_fingerprint
from repro.obs.trace import traced_span
from repro.telemetry.bus import bus
from repro.util.retry import RetryPolicy
from repro.util.tables import format_table

#: attempts per fleet cap write before power-gating the node.
_FLEET_CAP_WRITE_RETRY = RetryPolicy(attempts=3)

#: default thread-pool width for the tuning fan-out.
_DEFAULT_CONCURRENCY = 8


class _FleetCapWriteRejected(RuntimeError):
    """Internal: an injected ``fleet.cap_write``/``reject`` firing."""


@dataclass
class FleetResult:
    """Summary of one fleet run (JSON-stable via
    :func:`fleet_result_to_json`)."""

    plan_fingerprint: str
    faults_fingerprint: str | None
    seed: int
    global_cap_w: float
    steps: int
    nodes: list[dict]
    events: list[FleetEvent]
    budget_series: list[float]
    reaction_latencies: list[list]
    started: int
    completed: int
    crashed: int
    unfinished: int
    retunes: int = 0

    @property
    def survival_rate(self) -> float:
        """Fraction of started nodes that did not crash."""
        if not self.started:
            return 1.0
        return (self.started - self.crashed) / self.started

    @property
    def completion_rate(self) -> float:
        """Fraction of started nodes that finished their workload."""
        if not self.started:
            return 1.0
        return self.completed / self.started

    @property
    def peak_budget_w(self) -> float:
        return max(self.budget_series, default=0.0)

    def degradations(self) -> list[FleetEvent]:
        return [e for e in self.events if e.degradation]


def fleet_result_to_json(result: FleetResult) -> dict:
    """Deterministic full-fidelity JSON (the resume-equivalence
    currency: byte-identical for byte-identical runs)."""
    return {
        "plan": result.plan_fingerprint,
        "faults": result.faults_fingerprint,
        "seed": result.seed,
        "global_cap_w": result.global_cap_w,
        "steps": result.steps,
        "started": result.started,
        "completed": result.completed,
        "crashed": result.crashed,
        "unfinished": result.unfinished,
        "retunes": result.retunes,
        "survival_rate": result.survival_rate,
        "completion_rate": result.completion_rate,
        "nodes": result.nodes,
        "events": [e.to_json() for e in result.events],
        "budget_series": result.budget_series,
        "reaction_latencies": result.reaction_latencies,
    }


class FleetSimulation:
    """One fleet run: plan + faults -> :class:`FleetResult`."""

    def __init__(
        self,
        plan: FleetPlan,
        fault_plan: FaultPlan | None = None,
        *,
        journal: FleetJournal | None = None,
        resume: bool = False,
        concurrency: int | None = None,
        stop_after: int | None = None,
    ) -> None:
        if resume and journal is None:
            raise ValueError("--resume requires a fleet journal")
        if stop_after is not None and stop_after < 0:
            raise ValueError(
                f"stop_after must be >= 0, got {stop_after}"
            )
        self.plan = plan
        self.fault_plan = fault_plan
        self.journal = journal
        self.resume = resume
        if concurrency is not None and concurrency < 1:
            raise ValueError(
                f"concurrency must be >= 1, got {concurrency}"
            )
        self.concurrency = concurrency
        self.roster = [spec.node_id for spec in plan.nodes]
        self.cells = {
            spec.node_id: NodeCell(spec, plan) for spec in plan.nodes
        }
        self.membership = MembershipTracker(plan)
        self.allocator = BudgetAllocator(plan)
        self.injector: FaultInjector | None = make_injector(
            fault_plan, salt="fleet"
        )
        self.events: list[FleetEvent] = []
        self.budget_series: list[float] = []
        self.reaction_latencies: list[list] = []
        self.last_report: dict[str, dict] = {}
        self.unreachable_since: dict[str, int] = {}
        self.step = 0
        self._fresh_reports = 0
        #: harness-only kill switch (the chaos tests' simulated
        #: ``kill -9``): stop after journaling this many steps.  Not
        #: part of the plan, so it never touches the journal header.
        self.stop_after = stop_after

    # ------------------------------------------------------------------
    def _header(self) -> dict:
        return {
            "plan": fleet_plan_fingerprint(self.plan),
            "faults": plan_fingerprint(self.fault_plan),
            "seed": self.plan.seed,
            "global_cap_w": self.plan.global_cap_w,
            "nodes": len(self.plan.nodes),
        }

    def run(self) -> FleetResult:
        if self.journal is not None:
            if self.resume:
                self.journal.check_header(self._header())
                snap = self.journal.load_last_snapshot()
                if snap is not None:
                    self.step, state = snap
                    self._restore(state)
            else:
                self.journal.clear()
                self.journal.write_header(self._header())
        while self.step < self.plan.max_steps and not self._finished():
            if (
                self.stop_after is not None
                and self.step >= self.stop_after
            ):
                break
            self.step += 1
            self._run_step(self.step)
            if self.journal is not None:
                self.journal.append_snapshot(
                    self.step, self._snapshot()
                )
        return self._build_result()

    def _finished(self) -> bool:
        return all(
            cell.status in TERMINAL for cell in self.cells.values()
        )

    # ------------------------------------------------------------------
    def _emit(self, event: FleetEvent) -> None:
        self.events.append(event)
        tb = bus()
        if tb.enabled:
            if event.degradation:
                tb.count("fleet.degradations")
            tb.emit(
                "fleet.event",
                step=event.step,
                kind=event.kind,
                node=event.node,
                detail=event.detail,
            )

    def _active(self, node_id: str) -> bool:
        return self.cells[node_id].status not in ("pending",) + TERMINAL

    def _run_step(self, step: int) -> None:
        with traced_span("fleet.step", step=step):
            self._step_phases(step)

    def _step_phases(self, step: int) -> None:
        plan = self.plan
        # 1) staggered admissions.
        for node_id in self.roster:
            cell = self.cells[node_id]
            if (
                cell.status == "pending"
                and step >= cell.node_spec.start_step
            ):
                cell.status = "waiting"
                self.membership.admit(node_id, step)
                self._emit(
                    FleetEvent(
                        step, "node_started", node_id,
                        cell.machine.name,
                    )
                )

        # 2) whole-node faults, roster order (determinism contract).
        if self.injector is not None:
            for node_id in self.roster:
                if not self._active(node_id):
                    continue
                cell = self.cells[node_id]
                spec = self.injector.draw("fleet.node")
                if spec is None:
                    continue
                if spec.action == "crash":
                    cell.status = "crashed"
                    self.unreachable_since.setdefault(node_id, step)
                    self._emit(
                        FleetEvent(
                            step, "node_crashed", node_id,
                            "node process died (injected)",
                        )
                    )
                else:  # hang: a straggler that recovers
                    steps = int(
                        spec.magnitude or DEFAULT_FLEET_HANG_STEPS
                    )
                    cell.hang_until = max(
                        cell.hang_until, step + steps
                    )
                    self.unreachable_since.setdefault(node_id, step)
                    self._emit(
                        FleetEvent(
                            step, "node_hang", node_id,
                            f"straggling for {steps} steps",
                        )
                    )

        # 3) allocation + cap writes.
        infos = self._live_infos(step)
        utilization = {}
        for info in infos:
            if not info.cappable:
                continue
            applied = self.allocator.applied.get(info.node_id)
            report = self.last_report.get(info.node_id)
            if applied and report and report["power_w"] is not None:
                utilization[info.node_id] = (
                    report["power_w"] / applied
                )
        targets, alloc_events = self.allocator.allocate(
            step, infos, utilization, self._fresh_reports
        )
        for event in alloc_events:
            self._emit(event)
        for node_id in self.roster:
            if node_id not in targets:
                continue
            cell = self.cells[node_id]
            target = targets[node_id]
            if cell.cap_w == target:
                continue
            before = cell.current_label()
            try:
                self._write_cap(node_id, target)
            except _FleetCapWriteRejected:
                self._emit(
                    FleetEvent(
                        step, "cap_write_failed", node_id,
                        f"cap write {before} -> {target:g}W rejected "
                        f"{_FLEET_CAP_WRITE_RETRY.attempts} times",
                    )
                )
                self.allocator.park(node_id, step, plan.park_steps)
                self._emit(
                    FleetEvent(
                        step, "node_parked", node_id,
                        "cap write rejected; power-gated for "
                        f"{plan.park_steps} steps",
                    )
                )
                continue
            cell.cap_w = target
            self.allocator.note_applied(node_id, target, step)
            self._emit(
                FleetEvent(
                    step, "cap_changed", node_id,
                    f"{before} -> {cell.current_label()}",
                )
            )

        # 4) the invariant, every step, no exceptions.
        infos = self._live_infos(step)
        total = self.allocator.check_invariant(step, infos)
        self.budget_series.append(total)
        tb = bus()
        if tb.enabled:
            tb.gauge("fleet.budget_w", total)
            # the gauge only survives as a last-value metric at close;
            # the per-step value-event is what lets the SLO engine
            # check every step against the global cap.
            tb.emit("fleet.budget_w", step=step, value=total)

        # 5) advance cells (tunes fan out; the rest make progress).
        advancing: list[NodeCell] = []
        for node_id in self.roster:
            cell = self.cells[node_id]
            if cell.status not in ("waiting", "running"):
                continue
            if self.allocator.is_parked(node_id, step):
                continue
            if self.membership.state(node_id) in (DEAD, QUARANTINED):
                continue  # fenced until membership readmits it
            if step < cell.hang_until:
                continue
            if cell.status == "waiting":
                if cell.cappable and cell.cap_w is None:
                    continue  # still awaiting its first cap
                cell.status = "running"
            advancing.append(cell)
        tuning = [cell for cell in advancing if cell.needs_tune()]
        for cell, tune_events in zip(tuning, self._run_tunes(tuning)):
            for event in tune_events:
                self._emit(
                    FleetEvent(
                        step, event.kind, event.node, event.detail
                    )
                )
        for cell in advancing:
            if cell in tuning:
                continue  # the tune was this step's work
            cell.progress_step()
            if cell.status == "done":
                self._emit(
                    FleetEvent(
                        step, "node_done", cell.node_id,
                        f"workload complete at {cell.current_label()}",
                    )
                )
                self.membership.remove(cell.node_id)
                self.allocator.release(cell.node_id)

        # 6) heartbeats, through the telemetry fault sites.
        delivered: list[str] = []
        for node_id in self.roster:
            if not self._active(node_id):
                continue
            cell = self.cells[node_id]
            if step < cell.hang_until:
                continue  # hung nodes are silent
            if self.injector is not None and step >= cell.flap_until:
                spec = self.injector.draw("fleet.membership")
                if spec is not None:
                    steps = int(
                        spec.magnitude or DEFAULT_FLEET_FLAP_STEPS
                    )
                    cell.flap_until = step + steps
                    cell.flap_start = step
                    self._emit(
                        FleetEvent(
                            step, "membership_flap", node_id,
                            f"heartbeats flapping for {steps} steps",
                        )
                    )
            suppressed = False
            if step < cell.partition_until:
                suppressed = True
            elif self.injector is not None:
                spec = self.injector.draw("fleet.telemetry")
                if spec is not None and spec.action == "drop":
                    suppressed = True
                    self._emit(
                        FleetEvent(
                            step, "telemetry_drop", node_id,
                            "heartbeat report lost",
                        )
                    )
                elif spec is not None:  # partition
                    steps = int(
                        spec.magnitude
                        or DEFAULT_FLEET_PARTITION_STEPS
                    )
                    cell.partition_until = step + steps
                    suppressed = True
                    self._emit(
                        FleetEvent(
                            step, "telemetry_partition", node_id,
                            f"unreachable for {steps} steps "
                            "(still running)",
                        )
                    )
            if (
                not suppressed
                and step < cell.flap_until
                and (step - cell.flap_start) % 2 == 1
            ):
                suppressed = True  # the flap window's silent phase
            if suppressed:
                continue
            self.last_report[node_id] = cell.report(step)
            delivered.append(node_id)
            if tb.enabled:
                tb.emit("fleet.heartbeat", step=step, node=node_id)
        self._fresh_reports = len(delivered)
        for node_id in delivered:
            self.unreachable_since.pop(node_id, None)
        for node_id in self.membership.members():
            if node_id not in delivered:
                self.unreachable_since.setdefault(node_id, step)

        # 7) failure detection; deaths feed reaction-latency metrics.
        for event in self.membership.observe(step, set(delivered)):
            self._emit(event)
            if event.kind == "node_dead":
                since = self.unreachable_since.get(event.node, step)
                # the share is excluded from the next allocate call,
                # hence the +1: silence start -> budget reclaimed.
                self.reaction_latencies.append(
                    [event.node, step - since + 1]
                )

    # ------------------------------------------------------------------
    def _live_infos(self, step: int) -> list[NodeBudgetInfo]:
        """Live (alive/suspect, admitted, non-terminal) nodes in
        admission order - the allocator's whole world view."""
        infos = []
        for node_id in self.roster:
            if not self._active(node_id):
                continue
            if self.membership.state(node_id) in (DEAD, QUARANTINED):
                continue
            cell = self.cells[node_id]
            infos.append(
                NodeBudgetInfo(
                    node_id=node_id,
                    cappable=cell.cappable,
                    tdp_w=cell.machine.tdp_w,
                    min_cap_w=self.plan.min_cap_w(cell.machine),
                )
            )
        return infos

    def _write_cap(self, node_id: str, target: float) -> None:
        """One simulated management-plane cap write, retried against
        injected rejections."""

        def write() -> None:
            if self.injector is not None:
                spec = self.injector.draw("fleet.cap_write")
                if spec is not None:
                    raise _FleetCapWriteRejected(node_id)

        _FLEET_CAP_WRITE_RETRY.run(
            write,
            retry_on=_FleetCapWriteRejected,
            site="fleet.cap_write",
            salt=(node_id,),
        )

    def _tuning_concurrency(self) -> int:
        if bus().enabled:
            # the bus's seq counter is process-global: serial fan-out
            # keeps telemetry JSONL byte-identical run to run.
            return 1
        if self.concurrency is not None:
            return self.concurrency
        return min(_DEFAULT_CONCURRENCY, os.cpu_count() or 1)

    def _run_tunes(
        self, cells: list[NodeCell]
    ) -> list[list[FleetEvent]]:
        if not cells:
            return []
        width = self._tuning_concurrency()
        if width <= 1 or len(cells) == 1:
            out = []
            for cell in cells:
                with traced_span("fleet.tune", node=cell.node_id):
                    out.append(cell.tune())
            return out

        async def fan_out() -> list[list[FleetEvent]]:
            sem = asyncio.Semaphore(width)

            async def one(cell: NodeCell) -> list[FleetEvent]:
                async with sem:
                    return await asyncio.to_thread(cell.tune)

            return list(
                await asyncio.gather(*(one(c) for c in cells))
            )

        return asyncio.run(fan_out())

    # ------------------------------------------------------------------
    def _snapshot(self) -> dict:
        return {
            "cells": {
                node_id: self.cells[node_id].snapshot()
                for node_id in self.roster
            },
            "membership": self.membership.snapshot(),
            "allocator": self.allocator.snapshot(),
            "injector": (
                None
                if self.injector is None
                else self.injector.snapshot()
            ),
            "events": [e.to_json() for e in self.events],
            "budget_series": list(self.budget_series),
            "reaction_latencies": [
                list(pair) for pair in self.reaction_latencies
            ],
            "last_report": {
                node_id: dict(report)
                for node_id, report in sorted(
                    self.last_report.items()
                )
            },
            "unreachable_since": dict(
                sorted(self.unreachable_since.items())
            ),
            "fresh_reports": self._fresh_reports,
        }

    def _restore(self, state: dict) -> None:
        for node_id, blob in state["cells"].items():
            self.cells[node_id].restore(blob)
        self.membership.restore(state["membership"])
        self.allocator.restore(state["allocator"])
        if state["injector"] is not None and self.injector is not None:
            self.injector.restore(state["injector"])
        self.events = [
            FleetEvent.from_json(blob) for blob in state["events"]
        ]
        self.budget_series = [
            float(v) for v in state["budget_series"]
        ]
        self.reaction_latencies = [
            [str(node), int(latency)]
            for node, latency in state["reaction_latencies"]
        ]
        self.last_report = {
            str(node_id): dict(report)
            for node_id, report in state["last_report"].items()
        }
        self.unreachable_since = {
            str(node_id): int(step)
            for node_id, step in state["unreachable_since"].items()
        }
        self._fresh_reports = int(state["fresh_reports"])

    # ------------------------------------------------------------------
    def _build_result(self) -> FleetResult:
        nodes = []
        started = completed = crashed = retunes = 0
        for node_id in self.roster:
            cell = self.cells[node_id]
            if cell.status != "pending":
                started += 1
            if cell.status == "done":
                completed += 1
            if cell.status == "crashed":
                crashed += 1
            retunes += cell.retunes
            nodes.append(
                {
                    "node": node_id,
                    "machine": cell.machine.name,
                    "status": cell.status,
                    "progress": cell.progress,
                    "work_steps": cell.node_spec.work_steps,
                    "cap_w": cell.cap_w,
                    "tuned_levels": sorted(cell.tuned),
                    "retunes": cell.retunes,
                }
            )
        return FleetResult(
            plan_fingerprint=fleet_plan_fingerprint(self.plan),
            faults_fingerprint=plan_fingerprint(self.fault_plan),
            seed=self.plan.seed,
            global_cap_w=self.plan.global_cap_w,
            steps=self.step,
            nodes=nodes,
            events=list(self.events),
            budget_series=list(self.budget_series),
            reaction_latencies=[
                list(pair) for pair in self.reaction_latencies
            ],
            started=started,
            completed=completed,
            crashed=crashed,
            unfinished=started - completed - crashed,
            retunes=retunes,
        )


def run_fleet(
    plan: FleetPlan,
    fault_plan: FaultPlan | None = None,
    **kwargs,
) -> FleetResult:
    """Convenience wrapper: build and run one simulation."""
    return FleetSimulation(plan, fault_plan, **kwargs).run()


def render_fleet(result: FleetResult) -> str:
    """Human-readable fleet summary (the ``repro fleet run`` output)."""
    rows = []
    for node in result.nodes:
        cap = node["cap_w"]
        rows.append(
            [
                node["node"],
                node["machine"],
                node["status"],
                f"{node['progress']:.2f}/{node['work_steps']}",
                "TDP" if cap is None else f"{cap:g}W",
                str(len(node["tuned_levels"])),
                str(node["retunes"]),
            ]
        )
    table = format_table(
        ["node", "machine", "status", "progress", "cap", "levels",
         "retunes"],
        rows,
        title=(
            f"Fleet of {len(result.nodes)} nodes under "
            f"{result.global_cap_w:g}W global cap"
        ),
    )
    by_kind: dict[str, int] = {}
    for event in result.degradations():
        by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
    lines = [
        table,
        "",
        f"steps: {result.steps}   peak accounted power: "
        f"{result.peak_budget_w:g}W / {result.global_cap_w:g}W",
        f"started: {result.started}  completed: {result.completed}  "
        f"crashed: {result.crashed}  unfinished: {result.unfinished}",
        f"survival rate: {result.survival_rate:.3f}   "
        f"completion rate: {result.completion_rate:.3f}",
    ]
    if result.reaction_latencies:
        mean = sum(
            latency for _, latency in result.reaction_latencies
        ) / len(result.reaction_latencies)
        lines.append(
            f"allocator reaction latency: mean {mean:.1f} steps over "
            f"{len(result.reaction_latencies)} death(s)"
        )
    if by_kind:
        summary = ", ".join(
            f"{kind} x{count}"
            for kind, count in sorted(by_kind.items())
        )
        lines.append(f"degradations: {summary}")
    else:
        lines.append("degradations: none (clean run)")
    return "\n".join(lines) + "\n"
