"""The hierarchical budget allocator: one global cap, many node caps.

Each fleet step the allocator turns (live membership, last-known node
telemetry) into per-node power caps under the hard invariant::

    sum(caps of live, un-parked nodes) <= global cap

where un-cappable nodes (Minotaur-like: no capping privilege) are
accounted at their full TDP.  The policy is deliberately simple and
fully deterministic:

1. the fixed TDP of live un-cappable nodes comes off the top (if even
   that does not fit, the newest such nodes are power-gated);
2. every live cappable node is guaranteed a floor of
   ``min_cap_fraction * TDP`` (again parking the newest nodes when the
   floor sum exceeds the remaining pool);
3. the remaining headroom is split proportionally to each node's
   last-reported utilization (``power / cap``, so idle nodes donate
   headroom to busy ones), clamped to TDP;
4. shares are quantized *down* to ``quantum_w`` - quantization can
   only lower a node's cap, so it can never break the invariant, and
   it keeps re-tunes landing on previously-tuned cap levels (the
   process-wide evaluation memo makes those nearly free);
5. changes smaller than ``hysteresis_w``, or sooner than
   ``hysteresis_steps`` after the node's last change, are deferred and
   coalesced to the latest target - the
   :class:`~repro.core.capschedule.CapScheduleApplier` semantics at
   fleet scale - *except* when honoring the stale cap would overshoot
   the pool, in which case the deferral is overridden (safety beats
   smoothing).

During a total telemetry blackout (no report from any member) the
allocator holds the last-known-good allocation instead of reshuffling
on zero information; the hold is itself a typed degradation event.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.fleet.events import FleetEvent
from repro.fleet.plan import FleetPlan

#: invariant comparisons tolerate float-sum noise only.
_EPS = 1e-6


class BudgetInvariantError(RuntimeError):
    """The accounted fleet power exceeded the global cap - a bug, not
    a degradation; the chaos and property tests exist to prove this is
    unreachable under any fault plan."""


@dataclass(frozen=True)
class NodeBudgetInfo:
    """The allocator's static view of one live node."""

    node_id: str
    cappable: bool
    tdp_w: float
    min_cap_w: float


class BudgetAllocator:
    """Deterministic per-step cap redistribution for one fleet."""

    def __init__(self, plan: FleetPlan) -> None:
        self.plan = plan
        self.global_cap_w = plan.global_cap_w
        #: confirmed caps, cappable nodes only (W).
        self.applied: dict[str, float] = {}
        self.last_change: dict[str, int] = {}
        #: hysteresis-deferred targets, coalesced to the latest value.
        self.pending: dict[str, float] = {}
        self.parked_until: dict[str, int] = {}
        self._budget_parked: set[str] = set()
        self._holding = False
        self._allocated_once = False

    # ------------------------------------------------------------------
    def is_parked(self, node_id: str, step: int) -> bool:
        until = self.parked_until.get(node_id)
        return until is not None and step < until

    def park(self, node_id: str, step: int, steps: int) -> None:
        """Power-gate a node (its accounted share drops to zero)."""
        self.parked_until[node_id] = step + steps

    def release(self, node_id: str) -> None:
        """Forget a departed node entirely."""
        self.applied.pop(node_id, None)
        self.last_change.pop(node_id, None)
        self.pending.pop(node_id, None)
        self.parked_until.pop(node_id, None)
        self._budget_parked.discard(node_id)

    def note_applied(self, node_id: str, cap_w: float, step: int) -> None:
        """A cap write was confirmed by the node."""
        self.applied[node_id] = cap_w
        self.last_change[node_id] = step
        self.pending.pop(node_id, None)

    # ------------------------------------------------------------------
    def allocate(
        self,
        step: int,
        infos: list[NodeBudgetInfo],
        utilization: dict[str, float],
        fresh_reports: int,
    ) -> tuple[dict[str, float], list[FleetEvent]]:
        """Targets for this step's live roster (``infos`` in admission
        order - budget parking sheds the *newest* nodes first).

        Returns ``(targets, events)``; targets cover cappable,
        un-parked nodes only.  The caller performs the actual cap
        writes and confirms them via :meth:`note_applied`.
        """
        events: list[FleetEvent] = []
        active = [
            i for i in infos if not self.is_parked(i.node_id, step)
        ]

        # total telemetry blackout: hold last-known-good allocation.
        known = [
            i for i in active
            if not i.cappable or i.node_id in self.applied
        ]
        if (
            fresh_reports == 0
            and active
            and self._allocated_once
            and len(known) == len(active)
        ):
            held = {
                i.node_id: self.applied[i.node_id]
                for i in active
                if i.cappable
            }
            held_fixed = sum(
                i.tdp_w for i in active if not i.cappable
            )
            # the hold is only safe while the last-known-good caps
            # still fit the *current* roster: an un-cappable node
            # admitted during the blackout never needed an applied
            # cap, but its fixed TDP draw is real.  When holding
            # would overshoot, fall through to a full reallocation -
            # safety beats smoothing, as with hysteresis overrides.
            if (
                held_fixed + sum(held.values())
                <= self.global_cap_w + _EPS
            ):
                if not self._holding:
                    events.append(
                        FleetEvent(
                            step, "allocation_held", "",
                            "telemetry blackout: holding "
                            "last-known-good allocation",
                        )
                    )
                self._holding = True
                self._sync_budget_park_events(step, set(), events)
                return held, events
        self._holding = False
        self._allocated_once = True

        # 1) fixed draw of un-cappable nodes, newest parked on overflow.
        budget_parked: set[str] = set()
        uncappable = [i for i in active if not i.cappable]
        fixed = sum(i.tdp_w for i in uncappable)
        while fixed > self.global_cap_w + _EPS and uncappable:
            shed = uncappable.pop()
            fixed -= shed.tdp_w
            budget_parked.add(shed.node_id)
        pool = self.global_cap_w - fixed

        # 2) guaranteed floors, newest parked on overflow.
        cappable = [
            i for i in active
            if i.cappable and i.node_id not in budget_parked
        ]
        while (
            cappable
            and sum(i.min_cap_w for i in cappable) > pool + _EPS
        ):
            shed = cappable.pop()
            budget_parked.add(shed.node_id)
        self._sync_budget_park_events(step, budget_parked, events)
        if not cappable:
            return {}, events

        # 3) proportional headroom from last-known utilization.
        floors = sum(i.min_cap_w for i in cappable)
        extra = pool - floors
        weights = {
            i.node_id: (
                max(0.25, min(1.0, utilization.get(i.node_id, 1.0)))
                * (i.tdp_w - i.min_cap_w)
            )
            for i in cappable
        }
        total_weight = sum(weights.values())
        targets: dict[str, float] = {}
        for info in cappable:
            share = info.min_cap_w
            if total_weight > 0:
                share += extra * weights[info.node_id] / total_weight
            share = min(share, info.tdp_w)
            # 4) quantize down, never below the floor.
            q = self.plan.quantum_w
            share = max(
                info.min_cap_w, math.floor(share / q + _EPS) * q
            )
            targets[info.node_id] = share

        # 5) hysteresis + coalescing, overridden when safety needs it.
        proposal: dict[str, float] = {}
        deferred: list[str] = []
        for info in cappable:
            node_id = info.node_id
            target = targets[node_id]
            current = self.applied.get(node_id)
            if current is None or current == target:
                proposal[node_id] = target
                self.pending.pop(node_id, None)
                continue
            too_small = abs(target - current) < self.plan.hysteresis_w
            too_soon = (
                step - self.last_change.get(node_id, -10**9)
                < self.plan.hysteresis_steps
            )
            if too_small or too_soon:
                proposal[node_id] = current
                self.pending[node_id] = target  # coalesce to latest
                deferred.append(node_id)
            else:
                proposal[node_id] = target
                self.pending.pop(node_id, None)
        overshoot = sum(proposal.values()) - pool
        if overshoot > _EPS:
            # honoring stale caps would break the budget: force the
            # deferred nodes with the largest excess down to target.
            deferred.sort(
                key=lambda n: proposal[n] - targets[n], reverse=True
            )
            for node_id in deferred:
                excess = proposal[node_id] - targets[node_id]
                if overshoot <= _EPS or excess <= 0:
                    break
                overshoot -= excess
                proposal[node_id] = targets[node_id]
                self.pending.pop(node_id, None)
        return proposal, events

    def _sync_budget_park_events(
        self, step: int, parked: set[str], events: list[FleetEvent]
    ) -> None:
        for node_id in sorted(parked - self._budget_parked):
            events.append(
                FleetEvent(
                    step, "node_parked", node_id,
                    "insufficient global budget; power-gated",
                )
            )
        for node_id in sorted(self._budget_parked - parked):
            events.append(
                FleetEvent(step, "node_unparked", node_id, "")
            )
        self._budget_parked = parked
        for node_id in parked:
            # re-examined every step: a budget park lasts one round.
            self.parked_until[node_id] = step + 1

    # ------------------------------------------------------------------
    def accounted_power(
        self, step: int, infos: list[NodeBudgetInfo]
    ) -> float:
        """The power the allocator is currently answerable for: caps
        of live un-parked cappable nodes + TDP of live un-parked
        un-cappable ones."""
        total = 0.0
        for info in infos:
            if self.is_parked(info.node_id, step):
                continue
            if info.cappable:
                total += self.applied.get(info.node_id, 0.0)
            else:
                total += info.tdp_w
        return total

    def check_invariant(
        self, step: int, infos: list[NodeBudgetInfo]
    ) -> float:
        total = self.accounted_power(step, infos)
        if total > self.global_cap_w + _EPS:
            raise BudgetInvariantError(
                f"step {step}: accounted fleet power {total:.1f}W "
                f"exceeds the global cap {self.global_cap_w:.1f}W"
            )
        return total

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "applied": dict(sorted(self.applied.items())),
            "last_change": dict(sorted(self.last_change.items())),
            "pending": dict(sorted(self.pending.items())),
            "parked_until": dict(sorted(self.parked_until.items())),
            "budget_parked": sorted(self._budget_parked),
            "holding": self._holding,
            "allocated_once": self._allocated_once,
        }

    def restore(self, blob: dict) -> None:
        self.applied = {
            str(k): float(v) for k, v in blob["applied"].items()
        }
        self.last_change = {
            str(k): int(v) for k, v in blob["last_change"].items()
        }
        self.pending = {
            str(k): float(v) for k, v in blob["pending"].items()
        }
        self.parked_until = {
            str(k): int(v) for k, v in blob["parked_until"].items()
        }
        self._budget_parked = set(blob["budget_parked"])
        self._holding = bool(blob["holding"])
        self._allocated_once = bool(blob["allocated_once"])
