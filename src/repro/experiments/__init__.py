"""Experiment harness reproducing the paper's evaluation.

:mod:`repro.experiments.runner` orchestrates the three measurement
modes the paper compares (default, ARCS-Online, ARCS-Offline) with the
paper's repeat methodology (three runs; average on Crill, minimum on
Minotaur).  :mod:`repro.experiments.figures` and
:mod:`repro.experiments.tables` generate the data behind every figure
and table in Section V; :mod:`repro.experiments.reporting` renders them
as paper-style text tables.
"""

from repro.experiments.metrics import improvement_pct, normalized_series
from repro.experiments.runner import (
    CRILL_POWER_LEVELS,
    ExperimentSetup,
    StrategyRunResult,
    fresh_runtime,
    run_arcs_offline,
    run_arcs_online,
    run_default,
    run_strategy,
)

__all__ = [
    "CRILL_POWER_LEVELS",
    "ExperimentSetup",
    "StrategyRunResult",
    "fresh_runtime",
    "improvement_pct",
    "normalized_series",
    "run_arcs_offline",
    "run_arcs_online",
    "run_default",
    "run_strategy",
]
