"""Experiment harness reproducing the paper's evaluation.

:mod:`repro.experiments.runner` orchestrates the three measurement
modes the paper compares (default, ARCS-Online, ARCS-Offline) with the
paper's repeat methodology (three runs; average on Crill, minimum on
Minotaur).  :mod:`repro.experiments.figures` and
:mod:`repro.experiments.tables` generate the data behind every figure
and table in Section V; :mod:`repro.experiments.reporting` renders them
as paper-style text tables.  :mod:`repro.experiments.parallel` fans
sweep cells out over a process pool and
:mod:`repro.experiments.cache` memoizes their results on disk.
"""

from repro.experiments.cache import (
    CACHE_SCHEMA_VERSION,
    DEFAULT_CACHE_DIR,
    ExperimentCache,
    experiment_digest,
)
from repro.experiments.metrics import improvement_pct, normalized_series
from repro.experiments.parallel import (
    ParallelSweepExecutor,
    SweepTask,
    SweepTaskError,
    run_sweep_task,
)
from repro.experiments.runner import (
    CRILL_POWER_LEVELS,
    ExperimentSetup,
    StrategyRunResult,
    TuningDidNotConverge,
    fresh_runtime,
    run_arcs_offline,
    run_arcs_online,
    run_default,
    run_strategy,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CRILL_POWER_LEVELS",
    "DEFAULT_CACHE_DIR",
    "ExperimentCache",
    "ExperimentSetup",
    "ParallelSweepExecutor",
    "StrategyRunResult",
    "SweepTask",
    "SweepTaskError",
    "TuningDidNotConverge",
    "experiment_digest",
    "fresh_runtime",
    "improvement_pct",
    "normalized_series",
    "run_arcs_offline",
    "run_arcs_online",
    "run_default",
    "run_strategy",
    "run_sweep_task",
]
