"""Paper-style text rendering of figure/table data.

Each renderer is the *text backend* of the figure registry
(:mod:`repro.analysis.registry`): it formats the same tidy record rows
(:mod:`repro.analysis.records`) that the JSON and CSV backends
serialize, so every representation of a figure is guaranteed to show
the same numbers.
"""

from __future__ import annotations

from repro.analysis.records import (
    feature_records,
    fig1_records,
    fig9_records,
    sweep_records,
    table1_records,
    table2_records,
)
from repro.experiments.figures import (
    FEATURES,
    FeatureComparison,
    Fig1Row,
    Fig9Row,
    PowerSweep,
)
from repro.experiments.tables import Table1Row, Table2Row
from repro.util.tables import format_table

STRATEGY_ORDER = ("default", "arcs-online", "arcs-offline")


def render_fig1(rows: list[Fig1Row]) -> str:
    table_rows = []
    for r in fig1_records(rows):
        imp = r["improvement_pct"]
        table_rows.append(
            (
                r["power"],
                r["config"],
                f"{r['time_s']:.3f}",
                "-"
                if r["default_time_s"] is None
                else f"{r['default_time_s']:.3f}",
                "-" if imp is None else f"{imp:.1f}%",
            )
        )
    return format_table(
        ("power", "configuration", "time (s)", "default (s)", "improvement"),
        table_rows,
        title=(
            "Fig. 1: BT x_solve region - best vs default configuration "
            "across power levels (smaller is better)"
        ),
    )


def render_features(comparison: FeatureComparison, title: str) -> str:
    rows = [
        (
            r["region"],
            "-" if r["config"] is None else r["config"],
            *(f"{r[f]:.3f}" for f in FEATURES),
        )
        for r in feature_records(comparison)
    ]
    return format_table(
        ("region", "ARCS-Offline config", *FEATURES),
        rows,
        title=title
        + "  (feature values normalized to default = 1.0; smaller is "
        "better)",
    )


def render_sweep(sweep: PowerSweep, title: str) -> str:
    rows = [
        (
            r["power"],
            r["strategy"],
            f"{r['time_norm']:.3f}",
            "-"
            if r["energy_norm"] is None
            else f"{r['energy_norm']:.3f}",
        )
        for r in sweep_records(sweep, STRATEGY_ORDER)
    ]
    return format_table(
        ("power", "strategy", "time (norm)", "pkg energy (norm)"),
        rows,
        title=title + "  (normalized to default at the same power level)",
    )


def render_fig9(rows: list[Fig9Row]) -> str:
    table_rows = [
        (
            r["region"],
            r["calls"],
            f"{r['implicit_task_s']:.3f}",
            f"{r['loop_s']:.3f}",
            f"{r['barrier_s']:.3f}",
            f"{r['time_per_call_s'] * 1e3:.3f}",
        )
        for r in fig9_records(rows)
    ]
    return format_table(
        (
            "region",
            "calls",
            "IMPLICIT_TASK (s)",
            "LOOP (s)",
            "BARRIER (s)",
            "per-call (ms)",
        ),
        table_rows,
        title="Fig. 9: OMPT event data for top-5 LULESH regions (default "
        "config, TDP)",
    )


def render_table1(rows: list[Table1Row]) -> str:
    return format_table(
        ("Parameter", "Set of values"),
        [(r["parameter"], r["values"]) for r in table1_records(rows)],
        title="Table I: ARCS search parameters for OpenMP parallel regions",
    )


def render_table2(rows: list[Table2Row]) -> str:
    return format_table(
        ("Region", "Optimal Configuration (Thread, Schedule, Chunk)"),
        [(r["region"], r["config"]) for r in table2_records(rows)],
        title="Table II: optimal configuration chosen by ARCS-Offline for "
        "SP regions",
    )


def render_fleet_survival(rows: list[dict]) -> str:
    """Text backend of the fleet survival-rate table (rows from
    :func:`repro.analysis.records.fleet_survival_records`)."""
    table_rows = [
        (
            r["kind"],
            r["events"],
            r["nodes_affected"],
            r["nodes_survived"],
            f"{r['survival_rate'] * 100:.1f}%",
        )
        for r in rows
    ]
    return format_table(
        ("degradation", "events", "affected", "survived", "survival"),
        table_rows,
        title="Fleet survival by degradation kind (chaos fleet run)",
    )


def render_capsched_timeline(rows: list[dict]) -> str:
    """Text backend of the cap-schedule adaptation timeline (rows
    from :func:`repro.analysis.records.capsched_timeline_records`)."""
    table_rows = [
        (
            r["stream"],
            r["invocation"],
            r["cap_from"],
            r["cap_to"],
            "applied" if r["applied"] else "rejected",
        )
        for r in rows
    ]
    return format_table(
        ("stream", "invocation", "from", "to", "outcome"),
        table_rows,
        title="Cap-schedule adaptation timeline (telemetry cap.change "
        "events)",
    )


def render_service_hit_rate(rows: list[dict]) -> str:
    """Text backend of the tuning-service hit-rate table (rows from
    :func:`repro.analysis.records.service_hit_rate_records`)."""
    table_rows = [
        (
            r["scope"],
            r["name"],
            r["requests"],
            r["hits"],
            r["misses"],
            (
                "-"
                if r["hit_rate"] is None
                else f"{r['hit_rate'] * 100:.1f}%"
            ),
        )
        for r in rows
    ]
    return format_table(
        ("scope", "name", "requests", "hits", "misses", "hit_rate"),
        table_rows,
        title="Tuning-service hit rate by tier and store shard",
    )


def render_bench_trend(rows: list[dict]) -> str:
    """Text backend of the BENCH metric trend table (rows from
    :func:`repro.analysis.records.bench_trend_records`)."""
    table_rows = [
        (
            r["bench"],
            r["metric"],
            r["direction"],
            r["commit"],
            r["value"],
            f"{r['rel_change_vs_first'] * 100:+.1f}%",
        )
        for r in rows
    ]
    return format_table(
        ("bench", "metric", "direction", "commit", "value",
         "vs_first"),
        table_rows,
        title="BENCH metric trend across commits",
    )
