"""Strategy runners: default vs ARCS-Online vs ARCS-Offline.

Methodology mirrors Section IV-D:

* power caps {55, 70, 85, 100, 115(TDP)} W on Crill; Minotaur runs at
  TDP only (no capping privilege) and reports time only;
* every measurement is repeated three times; Crill reports the
  average (dedicated machine), Minotaur the minimum (shared machine);
* ARCS-Offline = exhaustive tuning run(s) followed by a measured run
  that replays the saved best configurations ("Only the second
  execution with the optimal configuration is measured");
* ARCS-Online = Nelder-Mead searching and executing in the same run,
  which *is* the measured run (search overhead included).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.controller import ARCS
from repro.core.history import HistoryStore, experiment_key
from repro.core.overhead import OverheadReport
from repro.faults.inject import make_injector
from repro.faults.plan import FaultPlan
from repro.machine.node import SimulatedNode
from repro.machine.rapl import CapWriteRejectedError
from repro.machine.spec import MachineSpec
from repro.openmp.runtime import OpenMPRuntime
from repro.openmp.types import OMPConfig
from repro.util.rng import derive_seed
from repro.util.stats import summarize_runs
from repro.workloads.base import Application, AppRunResult, run_application

#: Crill power levels (W per package); None = uncapped TDP run.
CRILL_POWER_LEVELS: tuple[float, ...] = (55.0, 70.0, 85.0, 100.0, 115.0)

#: repeats per measurement, as in the paper.
DEFAULT_REPEATS = 3

#: upper bound on exhaustive tuning executions (the 162-point Crill
#: space needs ~3 runs of a 60-step NPB app).
MAX_TUNING_RUNS = 10


class TuningDidNotConverge(RuntimeError):
    """ARCS-Offline exhausted its tuning-run budget without saving a
    history entry (search never converged, or converged with nothing
    to save).  Replaces the opaque ``KeyError`` the replay phase used
    to raise when ``history.load`` found no entry."""

    def __init__(self, key: str, runs_used: int) -> None:
        self.key = key
        self.runs_used = runs_used
        super().__init__(
            f"exhaustive tuning for {key!r} did not converge within "
            f"{runs_used} run(s) (MAX_TUNING_RUNS={MAX_TUNING_RUNS}); "
            "no best configurations were saved to the history"
        )


@dataclass(frozen=True)
class ExperimentSetup:
    """Everything defining one measurement context."""

    spec: MachineSpec
    cap_w: float | None = None
    repeats: int = DEFAULT_REPEATS
    seed: int = 0
    noise_sigma: float = 0.01
    online_max_evals: int = 40
    #: deterministic fault-injection plan (None / empty plan = clean
    #: run); each run of the experiment gets its own injector, salted
    #: by the run index so repeats draw independent fault streams.
    fault_plan: FaultPlan | None = None

    def __post_init__(self) -> None:
        if self.repeats < 1:
            raise ValueError(
                f"repeats must be >= 1, got {self.repeats}"
            )
        if self.cap_w is not None:
            if self.cap_w <= 0:
                raise ValueError(
                    f"cap_w must be positive, got {self.cap_w}"
                )
            if not self.spec.supports_power_cap:
                raise ValueError(
                    f"machine {self.spec.name!r} has no power-capping "
                    f"privilege; a cap of {self.cap_w:g} W cannot be "
                    "applied (run uncapped with cap_w=None instead)"
                )

    @property
    def summary_mode(self) -> str:
        """Crill was dedicated (average); Minotaur shared (minimum)."""
        return "min" if self.spec.name == "minotaur" else "mean"


@dataclass(frozen=True)
class StrategyRunResult:
    """Summarized measurement of one (app, strategy, cap)."""

    strategy: str
    app_label: str
    machine: str
    cap_w: float | None
    time_s: float
    energy_j: float | None
    runs: tuple[AppRunResult, ...]
    chosen_configs: dict[str, OMPConfig] = field(default_factory=dict)
    overhead: OverheadReport | None = None
    tuning_runs: int = 0
    #: sorted union of every degradation recorded across the repeats:
    #: per-run measurement notes plus per-region tuning fallbacks.
    #: Empty means the measurement ran clean end to end.
    degradations: tuple[str, ...] = ()

    @property
    def representative(self) -> AppRunResult:
        return self.runs[-1]


#: attempts per power-cap write before degrading to an uncapped run.
_CAP_WRITE_ATTEMPTS = 3


def fresh_runtime(
    setup: ExperimentSetup, run_index: int = 0
) -> OpenMPRuntime:
    """A new node + runtime with the power cap applied and settled.

    Cap writes are retried against injected/transient rejections; if
    the cap cannot be applied at all the run proceeds *uncapped* with a
    degradation note rather than crashing (the paper's harness kept
    going when msr-safe hiccuped) - but never silently, which would
    report "capped" results that actually ran at TDP.
    """
    node = SimulatedNode(
        setup.spec,
        faults=make_injector(setup.fault_plan, salt=run_index),
    )
    runtime = OpenMPRuntime(
        node,
        seed=derive_seed(setup.seed, "run", run_index),
        noise_sigma=setup.noise_sigma,
    )
    if setup.cap_w is not None:
        # ExperimentSetup guarantees the spec supports capping.
        last: CapWriteRejectedError | None = None
        for _ in range(_CAP_WRITE_ATTEMPTS):
            try:
                node.set_power_cap(setup.cap_w)
                break
            except CapWriteRejectedError as exc:
                last = exc
                node.settle_after_cap()  # back off before retrying
        else:
            runtime.degradations.append(
                f"power cap {setup.cap_w:g} W could not be applied "
                f"after {_CAP_WRITE_ATTEMPTS} attempts ({last}); "
                "running uncapped"
            )
        node.settle_after_cap()
    return runtime


def _summarize(
    setup: ExperimentSetup, results: list[AppRunResult]
) -> tuple[float, float | None]:
    time_s = summarize_runs(
        [r.time_s for r in results], setup.summary_mode
    )
    if any(r.energy_j is None for r in results):
        # no counters on this machine, or a run degraded to time-only
        # after persistent RAPL read failures; a summary over a partial
        # sample would misrepresent the energy, so report none.
        return time_s, None
    energy_j = summarize_runs(
        [r.energy_j for r in results], setup.summary_mode  # type: ignore[misc]
    )
    return time_s, energy_j


def _collect_degradations(
    results: list[AppRunResult], *extra_sources: dict[str, str] | list[str]
) -> tuple[str, ...]:
    """Sorted union of degradation notes across runs plus per-region
    tuning fallbacks / bridge notes from extra sources."""
    notes: set[str] = set()
    for result in results:
        notes.update(result.degraded)
    for source in extra_sources:
        if isinstance(source, dict):
            notes.update(
                f"region {name}: {reason}; fell back to default "
                "configuration"
                for name, reason in source.items()
            )
        else:
            notes.update(source)
    return tuple(sorted(notes))


# ---------------------------------------------------------------------------
def run_default(
    app: Application, setup: ExperimentSetup
) -> StrategyRunResult:
    """The paper's baseline: no APEX, no tuning, default configuration
    (max threads, default static)."""
    results = []
    for r in range(setup.repeats):
        runtime = fresh_runtime(setup, run_index=r)
        results.append(run_application(app, runtime))
    time_s, energy_j = _summarize(setup, results)
    return StrategyRunResult(
        strategy="default",
        app_label=app.label,
        machine=setup.spec.name,
        cap_w=setup.cap_w,
        time_s=time_s,
        energy_j=energy_j,
        runs=tuple(results),
        degradations=_collect_degradations(results),
    )


def run_arcs_online(
    app: Application,
    setup: ExperimentSetup,
    selective_threshold_s: float | None = None,
) -> StrategyRunResult:
    """ARCS-Online: Nelder-Mead tunes within the measured run.

    ``selective_threshold_s`` enables the paper's future-work selective
    mode: regions whose first measured call is shorter than the
    threshold are never tuned (used by the selective-tuning ablation).
    """
    results = []
    configs: dict[str, OMPConfig] = {}
    overhead: OverheadReport | None = None
    fallbacks: dict[str, str] = {}
    bridge_notes: list[str] = []
    dropouts = 0
    for r in range(setup.repeats):
        runtime = fresh_runtime(setup, run_index=r)
        arcs = ARCS(
            runtime,
            strategy="nelder-mead",
            max_evals=setup.online_max_evals,
            seed=derive_seed(setup.seed, "online", r),
            selective_threshold_s=selective_threshold_s,
        )
        arcs.attach()
        results.append(run_application(app, runtime))
        configs = arcs.chosen_configs()
        overhead = arcs.overhead_report()
        fallbacks.update(arcs.degradations())
        dropouts += arcs.bridge.timer_dropouts
        arcs.finalize()
    if dropouts:
        bridge_notes.append(
            f"{dropouts} OMPT timer event(s) dropped across "
            f"{setup.repeats} run(s); affected executions ran "
            "unmeasured"
        )
    time_s, energy_j = _summarize(setup, results)
    return StrategyRunResult(
        strategy="arcs-online"
        if selective_threshold_s is None
        else "arcs-online-selective",
        app_label=app.label,
        machine=setup.spec.name,
        cap_w=setup.cap_w,
        time_s=time_s,
        energy_j=energy_j,
        runs=tuple(results),
        chosen_configs=configs,
        overhead=overhead,
        degradations=_collect_degradations(
            results, fallbacks, bridge_notes
        ),
    )


def run_arcs_offline(
    app: Application,
    setup: ExperimentSetup,
    history: HistoryStore | None = None,
) -> StrategyRunResult:
    """ARCS-Offline: exhaustive tuning run(s) produce a history file;
    the measured runs replay it.

    If ``history`` already holds configurations for this experiment
    key, tuning is skipped ("the saved values can be used instead of
    repeating the search process").
    """
    history = history if history is not None else HistoryStore()
    key = experiment_key(
        app.name, setup.spec.name, setup.cap_w, app.workload
    )
    tuning_runs = 0
    fallbacks: dict[str, str] = {}
    if not history.has(key):
        runtime = fresh_runtime(setup, run_index=1000)
        arcs = ARCS(
            runtime,
            strategy="exhaustive",
            history=history,
            history_key=key,
            seed=derive_seed(setup.seed, "offline-tuning"),
        )
        arcs.attach()
        while tuning_runs < MAX_TUNING_RUNS:
            run_application(app, runtime)
            tuning_runs += 1
            if arcs.converged:
                break
        fallbacks.update(arcs.degradations())
        arcs.finalize()
        if not history.has(key):
            raise TuningDidNotConverge(key, tuning_runs)

    results = []
    overhead: OverheadReport | None = None
    for r in range(setup.repeats):
        runtime = fresh_runtime(setup, run_index=r)
        arcs = ARCS(
            runtime,
            strategy="exhaustive",  # unused in replay mode
            history=history,
            history_key=key,
            replay=True,
        )
        arcs.attach()
        results.append(run_application(app, runtime))
        overhead = arcs.overhead_report()
        arcs.finalize()
    time_s, energy_j = _summarize(setup, results)
    return StrategyRunResult(
        strategy="arcs-offline",
        app_label=app.label,
        machine=setup.spec.name,
        cap_w=setup.cap_w,
        time_s=time_s,
        energy_j=energy_j,
        runs=tuple(results),
        chosen_configs=history.load(key),
        overhead=overhead,
        tuning_runs=tuning_runs,
        degradations=_collect_degradations(results, fallbacks),
    )


def run_strategy(
    name: str,
    app: Application,
    setup: ExperimentSetup,
    history: HistoryStore | None = None,
) -> StrategyRunResult:
    """Dispatch by strategy name: default / arcs-online / arcs-offline."""
    key = name.lower()
    if key == "default":
        return run_default(app, setup)
    if key in ("arcs-online", "online"):
        return run_arcs_online(app, setup)
    if key in ("arcs-offline", "offline"):
        return run_arcs_offline(app, setup, history=history)
    raise ValueError(
        f"unknown strategy {name!r}; known: default, arcs-online, "
        "arcs-offline"
    )
