"""Strategy runners: default vs ARCS-Online vs ARCS-Offline.

Methodology mirrors Section IV-D:

* power caps {55, 70, 85, 100, 115(TDP)} W on Crill; Minotaur runs at
  TDP only (no capping privilege) and reports time only;
* every measurement is repeated three times; Crill reports the
  average (dedicated machine), Minotaur the minimum (shared machine);
* ARCS-Offline = exhaustive tuning run(s) followed by a measured run
  that replays the saved best configurations ("Only the second
  execution with the optimal configuration is measured");
* ARCS-Online = Nelder-Mead searching and executing in the same run,
  which *is* the measured run (search overhead included).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.core.capschedule import CapSchedule, CapScheduleApplier
from repro.core.checkpoint import (
    CheckpointError,
    controller_checkpoint,
    restore_controller,
)
from repro.core.controller import ARCS
from repro.core.history import HistoryStore, experiment_key
from repro.core.overhead import OverheadReport
from repro.experiments.resumable import (
    RUN_CHECKPOINT_SCHEMA,
    SimulatedKill,
    load_run_checkpoint,
    write_run_checkpoint,
)
from repro.experiments.serialize import (
    app_fingerprint,
    config_from_json,
    config_to_json,
    overhead_from_json,
    overhead_to_json,
    run_from_json,
    run_to_json,
)
from repro.faults.inject import make_injector
from repro.faults.plan import FaultPlan, plan_fingerprint
from repro.machine.node import SimulatedNode
from repro.machine.rapl import CapWriteRejectedError
from repro.machine.spec import MachineSpec
from repro.openmp.runtime import OpenMPRuntime
from repro.openmp.types import OMPConfig
from repro.service.source import ConfigSource, config_key
from repro.supervise import RegionSupervisor, SuperviseConfig
from repro.obs.trace import traced_span
from repro.util.retry import RetryPolicy
from repro.util.rng import derive_seed
from repro.util.stats import summarize_runs
from repro.workloads.base import (
    Application,
    AppRunResult,
    RunProgress,
    run_application,
)

if TYPE_CHECKING:  # runner <-> surrogate would cycle at import time
    from repro.surrogate.plan import SurrogateTuning

#: tuning-search modes of the ARCS-Offline tuning run.  All three
#: produce a history entry replayed by identical measured runs, so the
#: result's ``strategy`` label stays ``"arcs-offline"`` regardless.
OFFLINE_TUNERS = ("exhaustive", "surrogate", "nelder-mead")

#: Crill power levels (W per package); None = uncapped TDP run.
CRILL_POWER_LEVELS: tuple[float, ...] = (55.0, 70.0, 85.0, 100.0, 115.0)

#: repeats per measurement, as in the paper.
DEFAULT_REPEATS = 3

#: upper bound on exhaustive tuning executions (the 162-point Crill
#: space needs ~3 runs of a 60-step NPB app).
MAX_TUNING_RUNS = 10


class TuningDidNotConverge(RuntimeError):
    """ARCS-Offline exhausted its tuning-run budget without saving a
    history entry (search never converged, or converged with nothing
    to save).  Replaces the opaque ``KeyError`` the replay phase used
    to raise when ``history.load`` found no entry."""

    def __init__(self, key: str, runs_used: int) -> None:
        self.key = key
        self.runs_used = runs_used
        super().__init__(
            f"exhaustive tuning for {key!r} did not converge within "
            f"{runs_used} run(s) (MAX_TUNING_RUNS={MAX_TUNING_RUNS}); "
            "no best configurations were saved to the history"
        )


@dataclass(frozen=True)
class ExperimentSetup:
    """Everything defining one measurement context."""

    spec: MachineSpec
    cap_w: float | None = None
    repeats: int = DEFAULT_REPEATS
    seed: int = 0
    noise_sigma: float = 0.01
    online_max_evals: int = 40
    #: deterministic fault-injection plan (None / empty plan = clean
    #: run); each run of the experiment gets its own injector, salted
    #: by the run index so repeats draw independent fault streams.
    fault_plan: FaultPlan | None = None
    #: dynamic power-cap timetable applied during each measured run
    #: (None / empty = the static ``cap_w`` for the whole run).
    cap_schedule: CapSchedule | None = None

    def __post_init__(self) -> None:
        if self.repeats < 1:
            raise ValueError(
                f"repeats must be >= 1, got {self.repeats}"
            )
        if self.cap_w is not None:
            if self.cap_w <= 0:
                raise ValueError(
                    f"cap_w must be positive, got {self.cap_w}"
                )
            if not self.spec.supports_power_cap:
                raise ValueError(
                    f"machine {self.spec.name!r} has no power-capping "
                    f"privilege; a cap of {self.cap_w:g} W cannot be "
                    "applied (run uncapped with cap_w=None instead)"
                )
        if self.cap_schedule and not self.spec.supports_power_cap:
            raise ValueError(
                f"machine {self.spec.name!r} has no power-capping "
                "privilege; a cap schedule cannot be applied"
            )

    @property
    def summary_mode(self) -> str:
        """Crill was dedicated (average); Minotaur shared (minimum)."""
        return "min" if self.spec.name == "minotaur" else "mean"


@dataclass(frozen=True)
class StrategyRunResult:
    """Summarized measurement of one (app, strategy, cap)."""

    strategy: str
    app_label: str
    machine: str
    cap_w: float | None
    time_s: float
    energy_j: float | None
    runs: tuple[AppRunResult, ...]
    chosen_configs: dict[str, OMPConfig] = field(default_factory=dict)
    overhead: OverheadReport | None = None
    tuning_runs: int = 0
    #: sorted union of every degradation recorded across the repeats:
    #: per-run measurement notes plus per-region tuning fallbacks.
    #: Empty means the measurement ran clean end to end.
    degradations: tuple[str, ...] = ()
    #: cap-schedule changes applied during the last repeat (in order),
    #: e.g. ``"invocation 30: power cap 85W -> 70W"``; empty for
    #: static-cap runs.
    cap_changes: tuple[str, ...] = ()

    @property
    def representative(self) -> AppRunResult:
        return self.runs[-1]


#: attempts per power-cap write before degrading to an uncapped run.
_CAP_WRITE_ATTEMPTS = 3

#: shared retry schedule for cap writes: bounded attempts, no sleeping
#: (backing off in simulated time is ``settle_after_cap``'s job).
_CAP_WRITE_RETRY = RetryPolicy(attempts=_CAP_WRITE_ATTEMPTS)


def fresh_runtime(
    setup: ExperimentSetup, run_index: int = 0
) -> OpenMPRuntime:
    """A new node + runtime with the power cap applied and settled.

    Cap writes are retried against injected/transient rejections; if
    the cap cannot be applied at all the run proceeds *uncapped* with a
    degradation note rather than crashing (the paper's harness kept
    going when msr-safe hiccuped) - but never silently, which would
    report "capped" results that actually ran at TDP.
    """
    node = SimulatedNode(
        setup.spec,
        faults=make_injector(setup.fault_plan, salt=run_index),
    )
    runtime = OpenMPRuntime(
        node,
        seed=derive_seed(setup.seed, "run", run_index),
        noise_sigma=setup.noise_sigma,
    )
    if setup.cap_w is not None:
        # ExperimentSetup guarantees the spec supports capping.
        try:
            _CAP_WRITE_RETRY.run(
                lambda: node.set_power_cap(setup.cap_w),
                retry_on=CapWriteRejectedError,
                site="cap.write",
                # back off in simulated time after *every* rejection,
                # matching the pre-RetryPolicy loop.
                on_failure=lambda _attempt, _exc: node.settle_after_cap(),
            )
        except CapWriteRejectedError as last:
            runtime.degradations.append(
                f"power cap {setup.cap_w:g} W could not be applied "
                f"after {_CAP_WRITE_ATTEMPTS} attempts ({last}); "
                "running uncapped"
            )
        node.settle_after_cap()
    return runtime


def _summarize(
    setup: ExperimentSetup, results: list[AppRunResult]
) -> tuple[float, float | None]:
    time_s = summarize_runs(
        [r.time_s for r in results], setup.summary_mode
    )
    if any(r.energy_j is None for r in results):
        # no counters on this machine, or a run degraded to time-only
        # after persistent RAPL read failures; a summary over a partial
        # sample would misrepresent the energy, so report none.
        return time_s, None
    energy_j = summarize_runs(
        [r.energy_j for r in results], setup.summary_mode  # type: ignore[misc]
    )
    return time_s, energy_j


def _collect_degradations(
    results: list[AppRunResult], *extra_sources: dict[str, str] | list[str]
) -> tuple[str, ...]:
    """Sorted union of degradation notes across runs plus per-region
    tuning fallbacks / bridge notes from extra sources."""
    notes: set[str] = set()
    for result in results:
        notes.update(result.degraded)
    for source in extra_sources:
        if isinstance(source, dict):
            notes.update(
                f"region {name}: {reason}; fell back to default "
                "configuration"
                for name, reason in source.items()
            )
        else:
            notes.update(source)
    return tuple(sorted(notes))


# ---------------------------------------------------------------------------
def _capsched_applier(setup: ExperimentSetup) -> CapScheduleApplier | None:
    """One fresh schedule cursor per run; ``None`` for static caps."""
    if setup.cap_schedule is None or not setup.cap_schedule:
        return None
    return CapScheduleApplier(setup.cap_schedule)


def _cap_observer(applier, runtime):
    """Observer driving a cap-schedule cursor (non-checkpointed runs)."""
    def observer(progress: RunProgress) -> None:
        applier.on_invocation(progress.invocations, runtime)
    return observer


def run_default(
    app: Application, setup: ExperimentSetup
) -> StrategyRunResult:
    """The paper's baseline: no APEX, no tuning, default configuration
    (max threads, default static)."""
    results = []
    cap_changes: list[str] = []
    for r in range(setup.repeats):
        runtime = fresh_runtime(setup, run_index=r)
        applier = _capsched_applier(setup)
        observer = (
            _cap_observer(applier, runtime)
            if applier is not None
            else None
        )
        with traced_span("run.repeat", strategy="default", repeat=r):
            results.append(
                run_application(app, runtime, observer=observer)
            )
        if applier is not None:
            cap_changes = list(applier.log)
    time_s, energy_j = _summarize(setup, results)
    return StrategyRunResult(
        strategy="default",
        app_label=app.label,
        machine=setup.spec.name,
        cap_w=setup.cap_w,
        time_s=time_s,
        energy_j=energy_j,
        runs=tuple(results),
        degradations=_collect_degradations(results),
        cap_changes=tuple(cap_changes),
    )


def _checkpoint_meta(
    app: Application,
    setup: ExperimentSetup,
    strategy: str,
    selective_threshold_s: float | None,
) -> dict:
    """Everything that must match for a checkpoint to be resumable:
    resuming under a different setup would splice incompatible state."""
    schedule = setup.cap_schedule
    return {
        "strategy": strategy,
        "app": app.label,
        "app_fingerprint": app_fingerprint(app),
        "machine": setup.spec.name,
        "cap_w": setup.cap_w,
        "repeats": setup.repeats,
        "seed": setup.seed,
        "noise_sigma": setup.noise_sigma,
        "online_max_evals": setup.online_max_evals,
        "faults": plan_fingerprint(setup.fault_plan),
        "capsched": schedule.fingerprint() if schedule else None,
        "selective_threshold_s": selective_threshold_s,
    }


def run_arcs_online(
    app: Application,
    setup: ExperimentSetup,
    selective_threshold_s: float | None = None,
    *,
    checkpoint_path: str | Path | None = None,
    resume_from: str | Path | None = None,
    supervise: SuperviseConfig | None = None,
    kill_after: int | None = None,
    batch: bool | None = None,
) -> StrategyRunResult:
    """ARCS-Online: Nelder-Mead tunes within the measured run.

    ``selective_threshold_s`` enables the paper's future-work selective
    mode: regions whose first measured call is shorter than the
    threshold are never tuned (used by the selective-tuning ablation).

    ``checkpoint_path`` persists a resumable checkpoint after every
    completed region invocation and every repeat boundary;
    ``resume_from`` restores one (and keeps checkpointing to the same
    file unless ``checkpoint_path`` overrides it).  A resumed run
    finishes byte-identical to an uninterrupted run at the same seed.
    Region execution goes through a :class:`RegionSupervisor`
    (``supervise`` overrides its deadlines/retry budget); ``kill_after``
    is a test hook raising :class:`SimulatedKill` once that many region
    invocations have completed globally, right after the checkpoint
    write for that invocation.
    """
    if kill_after is not None and checkpoint_path is None:
        raise ValueError(
            "kill_after requires checkpoint_path (the simulated kill "
            "must leave a checkpoint to resume from)"
        )
    if resume_from is not None and checkpoint_path is None:
        checkpoint_path = resume_from
    strategy_label = (
        "arcs-online"
        if selective_threshold_s is None
        else "arcs-online-selective"
    )
    meta = _checkpoint_meta(app, setup, strategy_label, selective_threshold_s)
    cap_aware = bool(setup.cap_schedule)

    results: list[AppRunResult] = []
    configs: dict[str, OMPConfig] = {}
    overhead: OverheadReport | None = None
    fallbacks: dict[str, str] = {}
    bridge_notes: list[str] = []
    dropouts = 0
    cap_changes: list[str] = []
    next_run = 0
    active: dict | None = None

    if resume_from is not None:
        blob = load_run_checkpoint(resume_from)
        if blob.get("meta") != meta:
            saved = blob.get("meta") or {}
            mismatched = sorted(
                set(saved) ^ set(meta)
                | {k for k in meta if k in saved and saved[k] != meta[k]}
            )
            raise CheckpointError(
                f"checkpoint {resume_from} belongs to a different "
                f"experiment (mismatched: {', '.join(mismatched)}); "
                "refusing to resume"
            )
        results = [run_from_json(r) for r in blob["runs"]]
        fallbacks = {
            str(k): str(v) for k, v in blob["fallbacks"].items()
        }
        dropouts = int(blob["dropouts"])
        configs = {
            str(k): config_from_json(v)
            for k, v in blob["configs"].items()
        }
        overhead = overhead_from_json(blob["overhead"])
        cap_changes = [str(c) for c in blob["cap_changes"]]
        next_run = int(blob["next_run"])
        active = blob["active"]

    def _write_checkpoint(boundary_next_run: int, active_blob: dict | None) -> None:
        write_run_checkpoint(
            checkpoint_path,
            {
                "schema": RUN_CHECKPOINT_SCHEMA,
                "meta": meta,
                "runs": [run_to_json(x) for x in results],
                "fallbacks": dict(fallbacks),
                "dropouts": dropouts,
                "configs": {
                    name: config_to_json(cfg)
                    for name, cfg in configs.items()
                },
                "overhead": overhead_to_json(overhead),
                "cap_changes": list(cap_changes),
                "next_run": boundary_next_run,
                "active": active_blob,
            },
        )

    for r in range(next_run, setup.repeats):
        runtime = fresh_runtime(setup, run_index=r)
        arcs = ARCS(
            runtime,
            strategy="nelder-mead",
            max_evals=setup.online_max_evals,
            seed=derive_seed(setup.seed, "online", r),
            selective_threshold_s=selective_threshold_s,
            cap_aware=cap_aware,
            batch=batch,
        )
        arcs.attach()
        supervisor = RegionSupervisor(
            runtime, supervise, pin=arcs.policy.pin_region
        )
        applier = _capsched_applier(setup)
        progress = RunProgress()
        if active is not None and int(active["run_index"]) == r:
            # fresh_runtime's side effects (clock advance, fault draws,
            # cap write) are fully overwritten by the restores below.
            node = runtime.node
            node.restore(active["node"])
            runtime.restore(active["runtime"])
            if node.faults is not None and active["injector"] is not None:
                node.faults.restore(active["injector"])
            restore_controller(arcs, active["controller"])
            supervisor.restore(active["supervisor"])
            if applier is not None and active["capsched"] is not None:
                applier.restore(active["capsched"])
            progress = RunProgress.from_snapshot(active["progress"])
        active = None

        completed_before = sum(x.total_region_calls for x in results)

        def observer(
            progress_: RunProgress,
            *,
            _r=r,
            _runtime=runtime,
            _arcs=arcs,
            _supervisor=supervisor,
            _applier=applier,
            _before=completed_before,
        ) -> None:
            if _applier is not None:
                _applier.on_invocation(progress_.invocations, _runtime)
            if checkpoint_path is not None:
                node = _runtime.node
                _write_checkpoint(
                    _r,
                    {
                        "run_index": _r,
                        "progress": progress_.snapshot(),
                        "node": node.snapshot(),
                        "runtime": _runtime.snapshot(),
                        "injector": (
                            None
                            if node.faults is None
                            else node.faults.snapshot()
                        ),
                        "controller": controller_checkpoint(_arcs),
                        "supervisor": _supervisor.snapshot(),
                        "capsched": (
                            None
                            if _applier is None
                            else _applier.snapshot()
                        ),
                    },
                )
            if (
                kill_after is not None
                and _before + progress_.invocations >= kill_after
            ):
                raise SimulatedKill(
                    _before + progress_.invocations,
                    Path(checkpoint_path),
                )

        with traced_span(
            "run.repeat", strategy=strategy_label, repeat=r
        ):
            results.append(
                run_application(
                    app,
                    runtime,
                    execute=supervisor.execute,
                    observer=observer,
                    progress=progress,
                )
            )
        configs = arcs.chosen_configs()
        overhead = arcs.overhead_report()
        fallbacks.update(arcs.degradations())
        dropouts += arcs.bridge.timer_dropouts
        if applier is not None:
            cap_changes = list(applier.log)
        arcs.finalize()
        if checkpoint_path is not None:
            _write_checkpoint(r + 1, None)

    if dropouts:
        bridge_notes.append(
            f"{dropouts} OMPT timer event(s) dropped across "
            f"{setup.repeats} run(s); affected executions ran "
            "unmeasured"
        )
    time_s, energy_j = _summarize(setup, results)
    return StrategyRunResult(
        strategy=strategy_label,
        app_label=app.label,
        machine=setup.spec.name,
        cap_w=setup.cap_w,
        time_s=time_s,
        energy_j=energy_j,
        runs=tuple(results),
        chosen_configs=configs,
        overhead=overhead,
        degradations=_collect_degradations(
            results, fallbacks, bridge_notes
        ),
        cap_changes=tuple(cap_changes),
    )


def run_arcs_offline(
    app: Application,
    setup: ExperimentSetup,
    history: HistoryStore | None = None,
    batch: bool | None = None,
    source: ConfigSource | None = None,
    *,
    tuner: str = "exhaustive",
    surrogate: "SurrogateTuning | None" = None,
) -> StrategyRunResult:
    """ARCS-Offline: exhaustive tuning run(s) produce a history file;
    the measured runs replay it.

    If ``history`` already holds configurations for this experiment
    key, tuning is skipped ("the saved values can be used instead of
    repeating the search process").  With a ``source`` chain the same
    skip extends across processes and machines: the chain is consulted
    (remote tuning service, then warm memo, then whatever else it
    holds) before tuning fresh, freshly tuned configurations are
    published back through it, and every tier failure along the way is
    surfaced as a degradation note - never an error.

    ``tuner`` selects how the tuning run searches (the measured replay
    runs are identical either way): ``"exhaustive"`` (the paper),
    ``"nelder-mead"``, or ``"surrogate"`` - model-ranked top-k probing
    via ``surrogate`` (a :class:`~repro.surrogate.plan.
    SurrogateTuning`).  An untrusted surrogate fit falls back to the
    plain Nelder-Mead path with a degradation note; the fallback run
    is byte-identical to ``tuner="nelder-mead"`` apart from that note.
    """
    if tuner not in OFFLINE_TUNERS:
        raise ValueError(
            f"unknown offline tuner {tuner!r}; known: {OFFLINE_TUNERS}"
        )
    if tuner == "surrogate" and surrogate is None:
        raise ValueError(
            "tuner='surrogate' needs a SurrogateTuning (model + "
            "thresholds); see repro.surrogate.plan"
        )
    history = history if history is not None else HistoryStore()
    key = experiment_key(
        app.name, setup.spec.name, setup.cap_w, app.workload
    )
    source_key = config_key(app, setup) if source is not None else None
    if source is not None and not history.has(key):
        entry = source.lookup(source_key)
        if entry is not None:
            configs_, values_ = entry
            history.save(
                key,
                configs_,
                {r: v for r, v in values_.items() if v is not None},
            )
    tuning_runs = 0
    fallbacks: dict[str, str] = {}
    surrogate_notes: list[str] = []
    if not history.has(key):
        tuning_strategy = tuner
        orders = None
        if tuner == "surrogate":
            from repro.surrogate.plan import fallback_note

            reason = surrogate.fallback_reason()
            if reason is not None:
                # decided *before* any search state exists, so the
                # fallback run shares every seed and code path with a
                # plain nelder-mead tuning run.
                surrogate_notes.append(fallback_note(reason))
                tuning_strategy = "nelder-mead"
            else:
                orders = surrogate.orders_for(
                    app, setup.spec, setup.cap_w
                )
        runtime = fresh_runtime(setup, run_index=1000)
        arcs = ARCS(
            runtime,
            strategy=tuning_strategy,
            max_evals=setup.online_max_evals,
            history=history,
            history_key=key,
            seed=derive_seed(setup.seed, "offline-tuning"),
            batch=batch,
            source=source,
            source_key=source_key,
            surrogate_orders=orders,
        )
        arcs.attach()
        while tuning_runs < MAX_TUNING_RUNS:
            with traced_span(
                "run.tuning",
                strategy="arcs-offline",
                tuning_run=tuning_runs,
            ):
                run_application(app, runtime)
            tuning_runs += 1
            if arcs.converged:
                break
        fallbacks.update(arcs.degradations())
        arcs.finalize()
        if not history.has(key):
            raise TuningDidNotConverge(key, tuning_runs)

    results = []
    overhead: OverheadReport | None = None
    cap_changes: list[str] = []
    for r in range(setup.repeats):
        runtime = fresh_runtime(setup, run_index=r)
        arcs = ARCS(
            runtime,
            strategy="exhaustive",  # unused in replay mode
            history=history,
            history_key=key,
            replay=True,
        )
        arcs.attach()
        # the tuning run stays cap-static (it tunes *for* setup.cap_w);
        # only the measured replay runs see the schedule, mirroring a
        # resource manager re-capping a production run of pre-tuned code.
        applier = _capsched_applier(setup)
        observer = (
            _cap_observer(applier, runtime)
            if applier is not None
            else None
        )
        with traced_span(
            "run.repeat", strategy="arcs-offline", repeat=r
        ):
            results.append(
                run_application(app, runtime, observer=observer)
            )
        overhead = arcs.overhead_report()
        if applier is not None:
            cap_changes = list(applier.log)
        arcs.finalize()
    source_notes = source.drain_notes() if source is not None else []
    time_s, energy_j = _summarize(setup, results)
    return StrategyRunResult(
        strategy="arcs-offline",
        app_label=app.label,
        machine=setup.spec.name,
        cap_w=setup.cap_w,
        time_s=time_s,
        energy_j=energy_j,
        runs=tuple(results),
        chosen_configs=history.load(key),
        overhead=overhead,
        tuning_runs=tuning_runs,
        degradations=_collect_degradations(
            results, fallbacks, source_notes, surrogate_notes
        ),
        cap_changes=tuple(cap_changes),
    )


def run_strategy(
    name: str,
    app: Application,
    setup: ExperimentSetup,
    history: HistoryStore | None = None,
    *,
    checkpoint_path: str | Path | None = None,
    resume_from: str | Path | None = None,
    supervise: SuperviseConfig | None = None,
    batch: bool | None = None,
    source: ConfigSource | None = None,
    surrogate: "SurrogateTuning | None" = None,
) -> StrategyRunResult:
    """Dispatch by strategy name: default / arcs-online / arcs-offline
    / surrogate (arcs-offline whose tuning run probes a model-ranked
    top-k subset instead of the whole space).

    ``source`` (a :class:`ConfigSource` chain) only affects the
    offline modes - the strategies that do not consume tuned knowledge
    ignore it, so a sweep can pass one chain uniformly.  ``surrogate``
    likewise only affects ``"surrogate"``.
    """
    key = name.lower()
    with traced_span(
        "run.strategy",
        strategy=key,
        app=app.label,
        machine=setup.spec.name,
    ):
        if key in ("arcs-online", "online"):
            return run_arcs_online(
                app,
                setup,
                checkpoint_path=checkpoint_path,
                resume_from=resume_from,
                supervise=supervise,
                batch=batch,
            )
        if checkpoint_path is not None or resume_from is not None:
            raise ValueError(
                f"checkpointing is only supported for arcs-online, not "
                f"{name!r}"
            )
        if key == "default":
            return run_default(app, setup)
        if key in ("arcs-offline", "offline"):
            return run_arcs_offline(
                app, setup, history=history, batch=batch, source=source
            )
        if key == "surrogate":
            return run_arcs_offline(
                app,
                setup,
                history=history,
                batch=batch,
                source=source,
                tuner="surrogate",
                surrogate=surrogate,
            )
        raise ValueError(
            f"unknown strategy {name!r}; known: default, arcs-online, "
            "arcs-offline, surrogate"
        )
