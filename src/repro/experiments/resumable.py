"""Run-checkpoint persistence for crash-recoverable measurements.

The experiment runner writes one checkpoint file after every completed
region invocation of an ARCS-Online run (and at every repeat
boundary).  The file is a single JSON object::

    {
      "schema": 1,
      "meta": {...},         # identifies the experiment; resume
                             # refuses a mismatch
      "runs": [...],         # completed repeats (full AppRunResults)
      "fallbacks": {...},    # per-region tuning fallbacks so far
      "dropouts": N,
      "configs": {...},      # chosen configs after the last repeat
      "overhead": {...},
      "cap_changes": [...],
      "next_run": R,         # first repeat not fully completed
      "active": {...} | null # mid-repeat state (progress, node,
                             # runtime, injector, controller,
                             # supervisor, capsched snapshots)
    }

Writes go through :func:`repro.util.atomicio.atomic_write_text`, so a
kill at any instant leaves either the previous checkpoint or the new
one on disk - never a torn file.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.checkpoint import CheckpointError
from repro.telemetry.bus import bus
from repro.util.atomicio import atomic_write_text

#: bump whenever the checkpoint layout or any snapshot format changes;
#: resuming from an older schema fails loudly instead of mis-restoring.
RUN_CHECKPOINT_SCHEMA = 1


class SimulatedKill(RuntimeError):
    """Raised by the runner's ``kill_after`` test hook *after* the
    checkpoint write for the target invocation, simulating a process
    killed at that exact point.  The chaos soak and the checkpoint
    tests catch it and resume from the file left behind."""

    def __init__(self, measurements: int, path: Path) -> None:
        self.measurements = measurements
        self.path = path
        super().__init__(
            f"simulated kill after {measurements} completed "
            f"measurement(s); checkpoint left at {path}"
        )


def write_run_checkpoint(path: str | Path, blob: dict) -> Path:
    """Atomically persist one checkpoint blob.

    ``allow_nan=False`` keeps the file strict JSON: an ``inf``/``NaN``
    sentinel leaking into a snapshot fails the write loudly instead of
    producing a file other parsers reject.
    """
    text = json.dumps(blob, allow_nan=False)
    result = atomic_write_text(path, text)
    tb = bus()
    if tb.enabled:
        tb.count("checkpoint.writes")
        tb.emit("checkpoint.write", bytes=len(text))
    return result


def load_run_checkpoint(path: str | Path) -> dict:
    """Load and schema-check a checkpoint; raises
    :class:`CheckpointError` naming the path on any problem."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise CheckpointError(
            f"cannot read checkpoint {path}: {exc}"
        ) from exc
    try:
        blob = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"checkpoint {path} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(blob, dict):
        raise CheckpointError(
            f"checkpoint {path} must be a JSON object, got "
            f"{type(blob).__name__}"
        )
    if blob.get("schema") != RUN_CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"checkpoint {path} has schema {blob.get('schema')!r}; "
            f"this version reads schema {RUN_CHECKPOINT_SCHEMA} - "
            "re-run without --resume-from"
        )
    return blob
