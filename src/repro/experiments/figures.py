"""Data generators for every figure in the paper's evaluation.

Each ``figN_*`` function runs the measurements behind the corresponding
figure and returns a small structured result that the benchmark harness
prints (and tests assert on).  Normalization follows the paper: every
value is divided by the default configuration's value at the same power
level ("Smaller value is better").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import search_space_for
from repro.core.history import HistoryStore
from repro.experiments.cache import ExperimentCache
from repro.experiments.parallel import ParallelSweepExecutor, SweepTask
from repro.faults.plan import FaultPlan
from repro.experiments.runner import (
    CRILL_POWER_LEVELS,
    ExperimentSetup,
    StrategyRunResult,
    run_arcs_offline,
    run_arcs_online,
    run_default,
)
from repro.machine.node import SimulatedNode
from repro.machine.spec import MachineSpec, crill, minotaur
from repro.openmp.engine import ExecutionEngine
from repro.openmp.types import OMPConfig, ScheduleKind, default_config
from repro.workloads.base import Application
from repro.workloads.bt import bt_application, bt_motivation_region
from repro.workloads.lulesh import lulesh_application
from repro.workloads.sp import sp_application

#: the four features compared in Figures 3, 6 and 10.
FEATURES = ("OMP_BARRIER", "L1 miss", "L2 miss", "L3 miss")


# ---------------------------------------------------------------------------
# Figure 1 - motivation: BT x_solve across power levels
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Fig1Row:
    label: str                 # power level or fixed no-cap config
    config: str
    time_s: float
    default_time_s: float | None   # default at the same power level

    @property
    def improvement_pct(self) -> float | None:
        if self.default_time_s is None:
            return None
        return 100.0 * (1.0 - self.time_s / self.default_time_s)


def fig1_motivation(
    spec: MachineSpec | None = None,
    caps: tuple[float, ...] = CRILL_POWER_LEVELS,
    calls: int = 60,
) -> list[Fig1Row]:
    """Region-level execution time of the BT ``x_solve`` motivation
    kernel: best configuration vs default at each power level, plus
    fixed configurations without a cap (the paper's right-hand bars)."""
    spec = spec or crill()
    region = bt_motivation_region("B")
    space = search_space_for(spec)
    rows: list[Fig1Row] = []

    def region_time(cap: float | None, config: OMPConfig) -> float:
        node = SimulatedNode(spec)
        if cap is not None:
            node.set_power_cap(cap)
            node.settle_after_cap()
        engine = ExecutionEngine(node)
        record = engine.execute(region, config)
        return record.time_s * calls

    def best_at(cap: float | None) -> tuple[OMPConfig, float]:
        best_cfg, best_t = None, float("inf")
        for indices in space.iter_indices():
            from repro.core.config import config_from_point

            cfg = config_from_point(space.decode(indices))
            t = region_time(cap, cfg)
            if t < best_t:
                best_cfg, best_t = cfg, t
        assert best_cfg is not None
        return best_cfg, best_t

    dflt = default_config(spec.total_hw_threads)
    for cap in caps:
        cap_arg = None if cap >= spec.tdp_w else cap
        label = "TDP" if cap_arg is None else f"{cap:g}W"
        cfg, t_best = best_at(cap_arg)
        t_dflt = region_time(cap_arg, dflt)
        rows.append(
            Fig1Row(
                label=label,
                config=cfg.label(),
                time_s=t_best,
                default_time_s=t_dflt,
            )
        )
    # fixed configurations without a power cap (paper's comparison bars)
    nocap_configs = (
        OMPConfig(24, ScheduleKind.GUIDED, 1),
        OMPConfig(32, ScheduleKind.DYNAMIC, 1),
        OMPConfig(32, ScheduleKind.GUIDED, 1),
        OMPConfig(32, ScheduleKind.STATIC, 1),
        dflt,
    )
    for cfg in nocap_configs:
        rows.append(
            Fig1Row(
                label="NO CAP",
                config=cfg.label(),
                time_s=region_time(None, cfg),
                default_time_s=None,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Feature comparisons (Figures 3, 6, 10)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FeatureComparison:
    """Normalized features of the ARCS-Offline run, per region
    (default = 1.0 for every feature)."""

    app_label: str
    regions: tuple[str, ...]
    offline_normalized: dict[str, dict[str, float]]
    offline_configs: dict[str, str]


def feature_comparison(
    app: Application,
    region_names: tuple[str, ...],
    setup: ExperimentSetup,
    history: HistoryStore | None = None,
) -> FeatureComparison:
    """Compare default vs ARCS-Offline cache/barrier features."""
    d = run_default(app, setup)
    off = run_arcs_offline(app, setup, history=history)
    normalized: dict[str, dict[str, float]] = {}
    for name in region_names:
        d_run = d.representative
        o_run = off.representative
        d_tot = d_run.region_totals[name]
        o_tot = o_run.region_totals[name]
        d_mr = d_run.region_miss_rates[name]
        o_mr = o_run.region_miss_rates[name]
        barrier_ratio = (
            o_tot.barrier_s / d_tot.barrier_s
            if d_tot.barrier_s > 0
            else 1.0
        )
        normalized[name] = {
            "OMP_BARRIER": barrier_ratio,
            "L1 miss": o_mr[0] / d_mr[0] if d_mr[0] > 0 else 1.0,
            "L2 miss": o_mr[1] / d_mr[1] if d_mr[1] > 0 else 1.0,
            "L3 miss": o_mr[2] / d_mr[2] if d_mr[2] > 0 else 1.0,
        }
    return FeatureComparison(
        app_label=app.label,
        regions=region_names,
        offline_normalized=normalized,
        offline_configs={
            name: cfg.label()
            for name, cfg in off.chosen_configs.items()
            if name in region_names
        },
    )


SP_MAJOR_REGIONS = ("compute_rhs", "x_solve", "y_solve", "z_solve")


def fig3_sp_features(
    setup: ExperimentSetup | None = None,
) -> FeatureComparison:
    """Figure 3: SP-B, four major regions, default vs Offline at TDP."""
    setup = setup or ExperimentSetup(spec=crill())
    return feature_comparison(sp_application("B"), SP_MAJOR_REGIONS, setup)


def fig6_bt_features(
    setup: ExperimentSetup | None = None,
) -> FeatureComparison:
    """Figure 6: BT-B ``compute_rhs``, default vs Offline at TDP."""
    setup = setup or ExperimentSetup(spec=crill())
    return feature_comparison(
        bt_application("B"), ("compute_rhs",), setup
    )


def fig10_lulesh_features(
    setup: ExperimentSetup | None = None,
) -> FeatureComparison:
    """Figure 10: LULESH ``CalcFBHourglassForceForElems``."""
    setup = setup or ExperimentSetup(spec=crill())
    return feature_comparison(
        lulesh_application(45), ("CalcFBHourglassForceForElems_",), setup
    )


# ---------------------------------------------------------------------------
# Power sweeps (Figures 4, 7, 8a/8b)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SweepCell:
    time_norm: float
    energy_norm: float | None


@dataclass(frozen=True)
class PowerSweep:
    """Normalized time/energy per (power level, strategy)."""

    app_label: str
    machine: str
    caps: tuple[float, ...]
    cells: dict[tuple[str, str], SweepCell]   # (cap label, strategy)
    results: dict[tuple[str, str], StrategyRunResult]

    def cap_label(self, cap: float) -> str:
        spec_tdp = {"crill": 115.0, "minotaur": 190.0}.get(self.machine)
        if spec_tdp is not None and cap >= spec_tdp:
            return "TDP"
        return f"{cap:g}W"


#: the strategies every sweep compares, in table order.
SWEEP_STRATEGIES = ("default", "arcs-online", "arcs-offline")


def power_sweep(
    app: Application,
    spec: MachineSpec,
    caps: tuple[float, ...],
    repeats: int = 3,
    seed: int = 0,
    *,
    workers: int = 1,
    cache: ExperimentCache | None = None,
    timeout_s: float | None = None,
    executor: ParallelSweepExecutor | None = None,
    fault_plan: FaultPlan | None = None,
    telemetry_dir: str | None = None,
    service: str | None = None,
) -> PowerSweep:
    """Run default / ARCS-Online / ARCS-Offline at each power level.

    Each (cap, strategy) cell is an independent :class:`SweepTask`;
    ``workers`` fans them out over a process pool and ``cache``
    memoizes completed cells (and the exhaustive tuning history of the
    offline cells) on disk.  The defaults - one worker, no cache -
    reproduce the original strictly-serial in-process behaviour
    bit-for-bit.  ``telemetry_dir`` makes every cell write its own
    ``task-<run_id>.jsonl`` trace there (telemetry never changes what
    is measured, only what is recorded).  ``service`` points offline
    cells at a ``repro serve`` daemon (``host:port``): tuned configs
    are fetched from / published to it through the degradation-ordered
    ConfigSource chain, and - like telemetry - using it never changes
    what is measured.
    """
    if executor is None:
        executor = ParallelSweepExecutor(
            max_workers=workers, cache=cache, timeout_s=timeout_s
        )
    else:
        cache = executor.cache

    tasks: list[SweepTask] = []
    labels: list[str] = []
    for cap in caps:
        cap_arg = None if cap >= spec.tdp_w else cap
        label = "TDP" if cap_arg is None else f"{cap:g}W"
        for strategy in SWEEP_STRATEGIES:
            history_path = None
            if cache is not None and strategy == "arcs-offline":
                setup = ExperimentSetup(
                    spec=spec,
                    cap_w=cap_arg,
                    repeats=repeats,
                    seed=seed,
                    fault_plan=fault_plan,
                )
                history_path = str(cache.history_path(app, setup))
            tasks.append(
                SweepTask(
                    app=app,
                    spec=spec,
                    strategy=strategy,
                    cap_w=cap_arg,
                    repeats=repeats,
                    seed=seed,
                    history_path=history_path,
                    fault_plan=fault_plan,
                    telemetry_dir=telemetry_dir,
                    service=service,
                )
            )
            labels.append(label)

    run_results = executor.run(tasks)

    cells: dict[tuple[str, str], SweepCell] = {}
    results: dict[tuple[str, str], StrategyRunResult] = {}
    bases: dict[str, StrategyRunResult] = {
        label: res
        for label, res in zip(labels, run_results)
        if res.strategy == "default"
    }
    for label, res in zip(labels, run_results):
        base = bases[label]
        results[(label, res.strategy)] = res
        cells[(label, res.strategy)] = SweepCell(
            time_norm=res.time_s / base.time_s,
            energy_norm=(
                None
                if base.energy_j is None or res.energy_j is None
                else res.energy_j / base.energy_j
            ),
        )
    return PowerSweep(
        app_label=app.label,
        machine=spec.name,
        caps=caps,
        cells=cells,
        results=results,
    )


def fig4_sp_power_sweep(
    repeats: int = 3,
    workers: int = 1,
    cache: ExperimentCache | None = None,
) -> PowerSweep:
    """Figure 4: SP-B on Crill across five power levels."""
    return power_sweep(
        sp_application("B"), crill(), CRILL_POWER_LEVELS,
        repeats=repeats, workers=workers, cache=cache,
    )


def fig5_sp_class_c(
    repeats: int = 3,
    workers: int = 1,
    cache: ExperimentCache | None = None,
) -> PowerSweep:
    """Figure 5: SP-C on Crill at TDP (time and energy)."""
    return power_sweep(
        sp_application("C"), crill(), (115.0,),
        repeats=repeats, workers=workers, cache=cache,
    )


def fig7_bt_power_sweep(
    repeats: int = 3,
    workers: int = 1,
    cache: ExperimentCache | None = None,
) -> PowerSweep:
    """Figure 7: BT-B on Crill across five power levels."""
    return power_sweep(
        bt_application("B"), crill(), CRILL_POWER_LEVELS,
        repeats=repeats, workers=workers, cache=cache,
    )


def fig8_lulesh(
    repeats: int = 3,
    workers: int = 1,
    cache: ExperimentCache | None = None,
) -> tuple[PowerSweep, PowerSweep]:
    """Figure 8: LULESH mesh 45 - (a/b) Crill across power levels,
    (c) Minotaur at TDP (time only)."""
    app = lulesh_application(45)
    crill_sweep = power_sweep(
        app, crill(), CRILL_POWER_LEVELS,
        repeats=repeats, workers=workers, cache=cache,
    )
    minotaur_sweep = power_sweep(
        app, minotaur(), (190.0,),
        repeats=repeats, workers=workers, cache=cache,
    )
    return crill_sweep, minotaur_sweep


# ---------------------------------------------------------------------------
# Figure 9 - LULESH top-5 regions, OMPT event breakdown
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Fig9Row:
    region: str
    calls: int
    implicit_task_s: float
    loop_s: float
    barrier_s: float

    @property
    def time_per_call_s(self) -> float:
        return self.implicit_task_s / self.calls if self.calls else 0.0

    @property
    def barrier_fraction(self) -> float:
        if self.implicit_task_s <= 0:
            return 0.0
        return self.barrier_s / self.implicit_task_s


def fig9_lulesh_regions(
    setup: ExperimentSetup | None = None, top: int = 5
) -> list[Fig9Row]:
    """Figure 9: the top-``top`` LULESH regions by inclusive time with
    their OpenMP_IMPLICIT_TASK / OpenMP_LOOP / OpenMP_BARRIER split.

    As in the paper ("We used TAU for our analysis"), the breakdown
    comes from a TAU-style OMPT profiler attached to a run of the
    default configuration at the highest power cap.
    """
    from repro.apex.tau import TauProfiler
    from repro.experiments.runner import fresh_runtime
    from repro.workloads.base import run_application

    setup = setup or ExperimentSetup(spec=crill(), repeats=1)
    app = lulesh_application(45)
    runtime = fresh_runtime(setup)
    profiler = TauProfiler()
    profiler.attach(runtime)
    run_application(app, runtime)
    profiler.detach()
    return [
        Fig9Row(
            region=r.region_name,
            calls=r.calls,
            implicit_task_s=r.implicit_task_s,
            loop_s=r.loop_s,
            barrier_s=r.barrier_s,
        )
        for r in profiler.top_by_inclusive_time(top)
    ]
