"""Process-pool sweep execution with memoized results.

``power_sweep`` historically ran its (strategy x cap) grid strictly
serially in one process and re-ran exhaustive tuning from scratch on
every invocation.  This module supplies the two missing pieces:

* :class:`ParallelSweepExecutor` fans independent sweep cells out over
  a :class:`concurrent.futures.ProcessPoolExecutor` with a per-task
  timeout and bounded retry, falling back to exact in-process serial
  execution at ``max_workers=1`` (the determinism-test path);
* each cell is checked against an :class:`~repro.experiments.cache.
  ExperimentCache` first, and offline cells share one on-disk tuned
  :class:`~repro.core.history.HistoryStore` per (app, machine, cap) so
  exhaustive tuning runs once, not once per caller.

Every task is a pure function of its :class:`SweepTask` spec, so
results are bit-identical whether computed inline, in a worker
process, or replayed from the cache.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass

from repro.core.history import HistoryStore
from repro.experiments.cache import ExperimentCache
from repro.experiments.runner import (
    ExperimentSetup,
    StrategyRunResult,
    run_strategy,
)
from repro.machine.spec import MachineSpec
from repro.workloads.base import Application

#: strategy aliases that replay a shared tuned history when one is
#: attached to the task.
_OFFLINE_STRATEGIES = ("arcs-offline", "offline")


@dataclass(frozen=True)
class SweepTask:
    """One self-contained sweep cell: everything a worker process
    needs to reproduce the measurement, picklable as a unit."""

    app: Application
    spec: MachineSpec
    strategy: str
    cap_w: float | None = None
    repeats: int = 3
    seed: int = 0
    noise_sigma: float = 0.01
    online_max_evals: int = 40
    #: path of the shared tuned history (offline cells only); ``None``
    #: keeps the old behaviour of an in-memory throwaway store.
    history_path: str | None = None

    def setup(self) -> ExperimentSetup:
        return ExperimentSetup(
            spec=self.spec,
            cap_w=self.cap_w,
            repeats=self.repeats,
            seed=self.seed,
            noise_sigma=self.noise_sigma,
            online_max_evals=self.online_max_evals,
        )

    @property
    def label(self) -> str:
        cap = "TDP" if self.cap_w is None else f"{self.cap_w:g}W"
        return f"{self.app.label}@{cap}/{self.strategy}"


def run_sweep_task(task: SweepTask) -> StrategyRunResult:
    """Execute one sweep cell (runs inside worker processes).

    Offline cells with a ``history_path`` load the shared tuned
    history first; when it already holds this experiment key the
    exhaustive tuning phase is skipped entirely.
    """
    history = None
    if (
        task.history_path is not None
        and task.strategy.lower() in _OFFLINE_STRATEGIES
    ):
        history = HistoryStore(task.history_path)
    return run_strategy(
        task.strategy, task.app, task.setup(), history=history
    )


class SweepTaskError(RuntimeError):
    """A sweep cell failed (or timed out) on every allowed attempt."""

    def __init__(
        self, task: SweepTask, attempts: int, cause: BaseException
    ) -> None:
        self.task = task
        self.attempts = attempts
        self.cause = cause
        reason = (
            "timed out"
            if isinstance(cause, FutureTimeoutError)
            else f"raised {type(cause).__name__}: {cause}"
        )
        super().__init__(
            f"sweep task {task.label} {reason} after "
            f"{attempts} attempt(s)"
        )


class ParallelSweepExecutor:
    """Run sweep cells concurrently, memoizing through a cache.

    Parameters
    ----------
    max_workers:
        Pool size.  ``1`` (the default) executes every task inline in
        the calling process - no pool, no pickling - which is the
        reference path determinism tests compare against.
    cache:
        Optional :class:`ExperimentCache`; hits skip execution
        entirely and completed cells are written back.
    timeout_s:
        Per-task wall-clock budget (pool mode only; inline execution
        cannot be interrupted).  A timed-out task counts as a failed
        attempt.  The stuck worker is abandoned, not killed, so pair
        timeouts with tasks that eventually terminate.
    retries:
        Extra attempts per task after the first failure.
    task_fn:
        The function executed per task (default :func:`run_sweep_task`).
        Must be picklable (module-level) when ``max_workers > 1``;
        injectable for fault-injection tests.
    """

    def __init__(
        self,
        max_workers: int = 1,
        cache: ExperimentCache | None = None,
        timeout_s: float | None = None,
        retries: int = 1,
        task_fn: Callable[[SweepTask], StrategyRunResult] = run_sweep_task,
    ) -> None:
        if max_workers < 1:
            raise ValueError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.max_workers = max_workers
        self.cache = cache
        self.timeout_s = timeout_s
        self.retries = retries
        self.task_fn = task_fn

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[SweepTask]) -> list[StrategyRunResult]:
        """Execute ``tasks``; the result list is aligned with input
        order regardless of completion order."""
        tasks = list(tasks)
        results: list[StrategyRunResult | None] = [None] * len(tasks)
        pending: list[int] = []
        for i, task in enumerate(tasks):
            cached = self._cache_get(task)
            if cached is not None:
                results[i] = cached
            else:
                pending.append(i)

        if not pending:
            return [r for r in results if r is not None]

        if self.max_workers == 1 or len(pending) == 1:
            for i in pending:
                results[i] = self._run_inline(tasks[i])
        else:
            self._run_pool(tasks, pending, results)

        out: list[StrategyRunResult] = []
        for result in results:
            assert result is not None
            out.append(result)
        return out

    # ------------------------------------------------------------------
    def _cache_get(self, task: SweepTask) -> StrategyRunResult | None:
        if self.cache is None:
            return None
        return self.cache.get(task.app, task.setup(), task.strategy)

    def _cache_put(self, task: SweepTask, result: StrategyRunResult) -> None:
        if self.cache is not None:
            self.cache.put(task.app, task.setup(), task.strategy, result)

    def _run_inline(self, task: SweepTask) -> StrategyRunResult:
        attempt = 0
        while True:
            attempt += 1
            try:
                result = self.task_fn(task)
            except Exception as exc:
                if attempt > self.retries:
                    raise SweepTaskError(task, attempt, exc) from exc
            else:
                self._cache_put(task, result)
                return result

    def _run_pool(
        self,
        tasks: list[SweepTask],
        pending: list[int],
        results: list[StrategyRunResult | None],
    ) -> None:
        pool = ProcessPoolExecutor(
            max_workers=min(self.max_workers, len(pending))
        )
        clean = False
        try:
            # (task index, attempt number, future); failed attempts
            # append their retry to the end of the queue.
            inflight: list[tuple[int, int, Future]] = [
                (i, 1, pool.submit(self.task_fn, tasks[i]))
                for i in pending
            ]
            cursor = 0
            while cursor < len(inflight):
                i, attempt, future = inflight[cursor]
                cursor += 1
                try:
                    result = future.result(timeout=self.timeout_s)
                except Exception as exc:
                    if attempt > self.retries:
                        raise SweepTaskError(
                            tasks[i], attempt, exc
                        ) from exc
                    inflight.append(
                        (
                            i,
                            attempt + 1,
                            pool.submit(self.task_fn, tasks[i]),
                        )
                    )
                else:
                    results[i] = result
                    self._cache_put(tasks[i], result)
            clean = True
        finally:
            # On failure, drop queued work and do not block on any
            # still-running (possibly stuck) worker.
            pool.shutdown(wait=clean, cancel_futures=not clean)
