"""Process-pool sweep execution with memoized results.

``power_sweep`` historically ran its (strategy x cap) grid strictly
serially in one process and re-ran exhaustive tuning from scratch on
every invocation.  This module supplies the two missing pieces:

* :class:`ParallelSweepExecutor` fans independent sweep cells out over
  a :class:`concurrent.futures.ProcessPoolExecutor` with a per-task
  timeout and bounded retry, falling back to exact in-process serial
  execution at ``max_workers=1`` (the determinism-test path);
* each cell is checked against an :class:`~repro.experiments.cache.
  ExperimentCache` first, and offline cells share one on-disk tuned
  :class:`~repro.core.history.HistoryStore` per (app, machine, cap) so
  exhaustive tuning runs once, not once per caller.

Every task is a pure function of its :class:`SweepTask` spec, so
results are bit-identical whether computed inline, in a worker
process, or replayed from the cache.
"""

from __future__ import annotations

import functools
import hashlib
import time
import traceback
from collections.abc import Callable, Sequence
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
)
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, replace
from pathlib import Path

from repro.core.history import CorruptHistoryError, HistoryStore
from repro.experiments.cache import ExperimentCache, experiment_digest
from repro.experiments.journal import (
    JournalHeaderMismatchError,
    SweepJournal,
)
from repro.experiments.runner import (
    ExperimentSetup,
    StrategyRunResult,
    TuningDidNotConverge,
    run_strategy,
)
from repro.faults.inject import FaultInjector
from repro.faults.plan import DEFAULT_HANG_S, FaultPlan, plan_fingerprint
from repro.machine.spec import MachineSpec
from repro.obs.trace import TraceContext, child_context, root_context
from repro.telemetry.bus import TelemetryBus, bus, install
from repro.telemetry.sinks import JsonlSink
from repro.workloads.base import Application

#: strategy aliases that replay a shared tuned history when one is
#: attached to the task.
_OFFLINE_STRATEGIES = ("arcs-offline", "offline")

#: exception types that signal a *deterministic* failure: the same
#: task spec will fail the same way on every attempt, so retrying
#: only wastes a worker slot and delays the real error report.
#: Everything else (``RuntimeError`` from a flaky measurement path,
#: ``OSError`` from the pool plumbing, a worker crash) is treated as
#: transient and retried.
_FATAL_TYPES: tuple[type[BaseException], ...] = (
    ValueError,
    TypeError,
    KeyError,
    AttributeError,
    NotImplementedError,
    TuningDidNotConverge,
    CorruptHistoryError,
)

#: exception types that signal a *transient* failure worth retrying:
#: executor plumbing (a broken pool, pipe/pickle I/O, a torn stream),
#: a worker that outlived its timeout budget, and the
#: flaky-measurement ``RuntimeError`` family (which also covers the
#: injected ``sweep.worker`` crash).
_RETRYABLE_TYPES: tuple[type[BaseException], ...] = (
    FutureTimeoutError,
    BrokenExecutor,
    RuntimeError,
    OSError,
    EOFError,
)

#: the only failures the attempt loops classify and wrap in
#: :class:`SweepTaskError`.  Anything outside this union is a harness
#: bug, not a task failure, and propagates raw with its original
#: traceback - a blanket ``except Exception`` here used to re-badge
#: such bugs as retryable cell failures and burn every retry slot
#: reproducing them.
_CLASSIFIED_TYPES = _FATAL_TYPES + _RETRYABLE_TYPES


def _is_fatal(exc: BaseException) -> bool:
    """Classify a task failure: fatal errors reproduce on retry."""
    if isinstance(exc, FutureTimeoutError):
        return False
    return isinstance(exc, _FATAL_TYPES)


def _cause_name(exc: BaseException) -> str | None:
    """Name of the chained ``__cause__`` (telemetry detail: a bare
    ``RuntimeError`` wrapping a ``CapWriteRejectedError`` reads very
    differently from one wrapping an ``OSError``)."""
    cause = exc.__cause__
    return None if cause is None else type(cause).__name__


@dataclass(frozen=True)
class SweepTask:
    """One self-contained sweep cell: everything a worker process
    needs to reproduce the measurement, picklable as a unit."""

    app: Application
    spec: MachineSpec
    strategy: str
    cap_w: float | None = None
    repeats: int = 3
    seed: int = 0
    noise_sigma: float = 0.01
    online_max_evals: int = 40
    #: path of the shared tuned history (offline cells only); ``None``
    #: keeps the old behaviour of an in-memory throwaway store.
    history_path: str | None = None
    #: deterministic fault plan threaded into the cell's runtimes
    #: (``None`` = clean).
    fault_plan: FaultPlan | None = None
    #: directory receiving this cell's telemetry JSONL (``None`` =
    #: telemetry off).  Deliberately *not* part of :meth:`setup`, so
    #: turning tracing on never invalidates cache/journal digests.
    telemetry_dir: str | None = None
    #: ``host:port`` of a tuning-service daemon consulted (and
    #: published to) by offline cells through the ConfigSource chain.
    #: Like ``telemetry_dir``, deliberately *not* part of
    #: :meth:`setup`: the service is a transparent knowledge cache, so
    #: pointing a sweep at one must never invalidate existing
    #: cache/journal digests (results are byte-identical either way).
    service: str | None = None
    #: traceparent handed off by the parent sweep's trace context; the
    #: worker adopts it as the root of everything the cell emits, so
    #: per-cell trace files stitch into the sweep's single tree.
    #: Observational only - like ``telemetry_dir``, never part of
    #: :meth:`setup` or any digest.
    trace: str | None = None

    def setup(self) -> ExperimentSetup:
        return ExperimentSetup(
            spec=self.spec,
            cap_w=self.cap_w,
            repeats=self.repeats,
            seed=self.seed,
            noise_sigma=self.noise_sigma,
            online_max_evals=self.online_max_evals,
            fault_plan=self.fault_plan,
        )

    @property
    def label(self) -> str:
        cap = "TDP" if self.cap_w is None else f"{self.cap_w:g}W"
        return f"{self.app.label}@{cap}/{self.strategy}"

    def run_id(self) -> str:
        """Deterministic telemetry run identifier for this cell (a
        prefix of the experiment digest, so it also keys the cache and
        journal)."""
        return task_run_id(self)


def task_run_id(task: SweepTask) -> str:
    return experiment_digest(task.app, task.setup(), task.strategy)[:12]


def run_sweep_task(task: SweepTask) -> StrategyRunResult:
    """Execute one sweep cell (runs inside worker processes).

    Offline cells with a ``history_path`` load the shared tuned
    history first; when it already holds this experiment key the
    exhaustive tuning phase is skipped entirely.

    With a ``telemetry_dir``, the cell runs under its own telemetry
    bus writing ``task-<run_id>.jsonl`` into that directory - one file
    per cell, whether the cell executes inline or in a worker process,
    so a sweep's trace files merge into one timeline regardless of how
    the work was scheduled.

    With a ``service`` address, offline cells consult the tuning
    daemon through a degradation-ordered :func:`~repro.service.source.
    default_chain` (service -> process memo -> local history) before
    tuning fresh, and publish what they tune.  The chain's client
    draws the ``service.*`` fault sites from the task's fault plan
    (salted separately from the runtime's injector), so network
    failure modes are deterministic per cell.
    """
    history = None
    source = None
    if task.strategy.lower() in _OFFLINE_STRATEGIES:
        if task.history_path is not None:
            history = HistoryStore(task.history_path)
        if task.service is not None:
            from repro.faults.inject import make_injector
            from repro.service.source import default_chain

            source = default_chain(
                task.service,
                faults=make_injector(
                    task.fault_plan, salt="service-client"
                ),
            )
    if task.telemetry_dir is None:
        return run_strategy(
            task.strategy,
            task.app,
            task.setup(),
            history=history,
            source=source,
        )
    run_id = task_run_id(task)
    task_bus = TelemetryBus(enabled=True)
    task_bus.add_sink(
        JsonlSink(Path(task.telemetry_dir) / f"task-{run_id}.jsonl")
    )
    # adopt the parent sweep's trace handoff (or root a fresh trace)
    # BEFORE the meta record, so the meta is stamped as belonging to
    # the handoff span - that stamp is how the tree stitcher labels
    # the cross-process boundary node.
    adopted = TraceContext.from_traceparent(task.trace)
    task_bus.trace = (
        adopted
        if adopted is not None
        else root_context(run_id=run_id, task=task.label)
    )
    task_bus.meta(
        run_id=run_id,
        task=task.label,
        strategy=task.strategy,
        machine=task.spec.name,
        cap_w=task.cap_w,
        seed=task.seed,
    )
    previous = install(task_bus)
    try:
        return run_strategy(
            task.strategy,
            task.app,
            task.setup(),
            history=history,
            source=source,
        )
    finally:
        install(previous)
        task_bus.close()


class _InjectedWorkerCrash(RuntimeError):
    """A ``sweep.worker``/``crash`` fault fired for this task (a
    worker process dying mid-cell).  Subclasses RuntimeError, so the
    executor classifies it as transient and retries - exactly how a
    real worker death is handled."""


def _injected_crash(
    inner: Callable[[SweepTask], StrategyRunResult], task: SweepTask
) -> StrategyRunResult:
    raise _InjectedWorkerCrash(
        f"injected worker crash for sweep task {task.label}"
    )


def _injected_hang(
    inner: Callable[[SweepTask], StrategyRunResult],
    hang_s: float,
    task: SweepTask,
) -> StrategyRunResult:
    # a stuck worker: sleeps past the executor's timeout budget, then
    # completes normally (the timeout, not this function, decides
    # whether the attempt counts as failed).
    time.sleep(hang_s)
    return inner(task)


class SweepTaskError(RuntimeError):
    """A sweep cell failed: timed out / crashed on every allowed
    attempt (``retryable=True``), or hit a deterministic error that
    retrying cannot fix (``retryable=False``).  The worker's full
    traceback rides along in ``worker_traceback`` so the failure site
    inside the cell is not lost across the process boundary."""

    def __init__(
        self,
        task: SweepTask,
        attempts: int,
        cause: BaseException,
        retryable: bool = True,
    ) -> None:
        self.task = task
        self.attempts = attempts
        self.cause = cause
        self.retryable = retryable
        #: the parent-side flight recorder's last-N telemetry events
        #: at failure time (empty when telemetry is disabled).
        self.flight: tuple[dict, ...] = bus().flight.dump()
        self.worker_traceback = "".join(
            traceback.format_exception(
                type(cause), cause, cause.__traceback__
            )
        )
        if isinstance(cause, FutureTimeoutError):
            reason = "timed out"
        else:
            reason = f"raised {type(cause).__name__}: {cause}"
        detail = (
            f"after {attempts} attempt(s)"
            if retryable
            else f"on attempt {attempts} (not retryable)"
        )
        super().__init__(
            f"sweep task {task.label} {reason} {detail}\n"
            f"--- worker traceback ---\n{self.worker_traceback}"
        )


class ParallelSweepExecutor:
    """Run sweep cells concurrently, memoizing through a cache.

    Parameters
    ----------
    max_workers:
        Pool size.  ``1`` (the default) executes every task inline in
        the calling process - no pool, no pickling - which is the
        reference path determinism tests compare against.
    cache:
        Optional :class:`ExperimentCache`; hits skip execution
        entirely and completed cells are written back.
    timeout_s:
        Per-task wall-clock budget (pool mode only; inline execution
        cannot be interrupted).  A timed-out task counts as a failed
        attempt.  The stuck worker is abandoned, not killed, so pair
        timeouts with tasks that eventually terminate.
    retries:
        Extra attempts per task after the first *transient* failure.
        Deterministic failures (:data:`_FATAL_TYPES`: bad parameters,
        corrupt history, tuning that cannot converge) are raised
        immediately - the same spec would fail identically on retry.
    task_fn:
        The function executed per task (default :func:`run_sweep_task`).
        Must be picklable (module-level) when ``max_workers > 1``;
        injectable for fault-injection tests.
    journal:
        Optional :class:`~repro.experiments.journal.SweepJournal`.
        Every completed cell is appended durably; with ``resume=True``
        cells already journaled are served from it instead of
        re-running (a killed sweep picks up where it stopped).
        Without ``resume`` the journal is cleared first.
    resume:
        Serve completed cells from the journal (requires ``journal``).
    faults:
        Optional :class:`~repro.faults.inject.FaultInjector` consulted
        once per task submission at the ``sweep.worker`` site; a
        ``crash`` fault makes that attempt die like a worker crash, a
        ``hang`` fault stalls it past the timeout.  Drawn in the
        parent process at submit time, so which attempt fails is a
        deterministic function of the plan seed, never of pool
        scheduling.
    """

    def __init__(
        self,
        max_workers: int = 1,
        cache: ExperimentCache | None = None,
        timeout_s: float | None = None,
        retries: int = 1,
        task_fn: Callable[[SweepTask], StrategyRunResult] = run_sweep_task,
        journal: SweepJournal | None = None,
        resume: bool = False,
        faults: FaultInjector | None = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if resume and journal is None:
            raise ValueError("resume=True needs a journal")
        self.max_workers = max_workers
        self.cache = cache
        self.timeout_s = timeout_s
        self.retries = retries
        self.task_fn = task_fn
        self.journal = journal
        self.resume = resume
        self.faults = faults

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[SweepTask]) -> list[StrategyRunResult]:
        """Execute ``tasks``; the result list is aligned with input
        order regardless of completion order."""
        tasks = list(tasks)
        journaled: dict[str, StrategyRunResult] = {}
        if self.journal is not None:
            header = self._header(tasks)
            if self.resume:
                saved = self.journal.read_header()
                if saved is not None and saved != header:
                    mismatched = sorted(
                        set(saved) ^ set(header)
                        | {
                            k
                            for k in header
                            if k in saved and saved[k] != header[k]
                        }
                    )
                    raise JournalHeaderMismatchError(
                        f"journal {self.journal.path} was written by a "
                        "different sweep (mismatched: "
                        f"{', '.join(mismatched)}); resuming would mix "
                        "incompatible results - delete the journal or "
                        "re-run without resume"
                    )
                journaled = self.journal.load()
            else:
                self.journal.clear()
                self.journal.write_header(header)

        tb = bus()
        journaled_traces: dict[str, str] = {}
        if self.journal is not None and self.resume and tb.enabled:
            journaled_traces = self.journal.traceparents()
        results: list[StrategyRunResult | None] = [None] * len(tasks)
        pending: list[int] = []
        for i, task in enumerate(tasks):
            from_journal = journaled.get(self._digest(task))
            done = from_journal
            if done is None:
                done = self._cache_get(task)
            if done is not None:
                results[i] = done
                if tb.enabled:
                    source = (
                        "journal" if from_journal is not None else "cache"
                    )
                    tb.count(f"sweep.tasks_{source}")
                    reused_attrs: dict = {}
                    handoff = journaled_traces.get(self._digest(task))
                    if handoff is not None:
                        reused_attrs["trace_handoff"] = handoff
                    tb.emit(
                        "sweep.task_reused",
                        task=task.label,
                        run_id=task.run_id(),
                        source=source,
                        **reused_attrs,
                    )
            else:
                pending.append(i)

        if not pending:
            return [r for r in results if r is not None]

        # hand each pending cell its own child trace context, minted
        # here in the parent so sibling workers (whose own counters all
        # start at zero) can never collide on span ids.  The field is
        # outside every digest, so stamping it is result-neutral.
        if tb.enabled and tb.trace is not None:
            for i in pending:
                ctx = child_context(tb, tb.trace)
                tasks[i] = replace(tasks[i], trace=ctx.to_traceparent())

        if self.max_workers == 1 or len(pending) == 1:
            for i in pending:
                results[i] = self._run_inline(tasks[i])
        else:
            self._run_pool(tasks, pending, results)

        out: list[StrategyRunResult] = []
        for result in results:
            assert result is not None
            out.append(result)
        return out

    # ------------------------------------------------------------------
    @staticmethod
    def _digest(task: SweepTask) -> str:
        return experiment_digest(task.app, task.setup(), task.strategy)

    @classmethod
    def _header(cls, tasks: Sequence[SweepTask]) -> dict:
        """Sweep-identity record written to (and checked against) the
        journal: task-grid fingerprint, seeds and fault-plan hashes."""
        digests = sorted(cls._digest(task) for task in tasks)
        sweep = hashlib.sha256(
            "\n".join(digests).encode()
        ).hexdigest()[:16]
        fault_prints = sorted(
            {
                fp
                for fp in (
                    plan_fingerprint(task.fault_plan) for task in tasks
                )
                if fp is not None
            }
        )
        return {
            "sweep": sweep,
            "seeds": sorted({task.seed for task in tasks}),
            "faults": fault_prints,
        }

    def _cache_get(self, task: SweepTask) -> StrategyRunResult | None:
        if self.cache is None:
            return None
        return self.cache.get(task.app, task.setup(), task.strategy)

    def _record(self, task: SweepTask, result: StrategyRunResult) -> None:
        """Persist one completed cell everywhere it is memoized."""
        if self.cache is not None:
            self.cache.put(task.app, task.setup(), task.strategy, result)
        if self.journal is not None:
            self.journal.append(
                self._digest(task),
                task.label,
                result,
                run_id=task.run_id(),
                trace=task.trace,
            )
        tb = bus()
        if tb.enabled:
            tb.count("sweep.tasks_completed")
            tb.emit(
                "sweep.task_done",
                task=task.label,
                run_id=task.run_id(),
                time_s=result.time_s,
            )

    def _attempt_fn(
        self, task: SweepTask
    ) -> Callable[[SweepTask], StrategyRunResult]:
        """The callable for one attempt of ``task``, with any
        ``sweep.worker`` fault baked in.  Drawn here - in the parent,
        at submit time - so the fault schedule is deterministic."""
        if self.faults is None:
            return self.task_fn
        spec = self.faults.draw("sweep.worker")
        if spec is None:
            return self.task_fn
        if spec.action == "crash":
            return functools.partial(_injected_crash, self.task_fn)
        hang_s = spec.magnitude or DEFAULT_HANG_S
        return functools.partial(_injected_hang, self.task_fn, hang_s)

    def _run_inline(self, task: SweepTask) -> StrategyRunResult:
        attempt = 0
        while True:
            attempt += 1
            bus().emit(
                "sweep.task_start",
                task=task.label,
                run_id=task.run_id(),
                attempt=attempt,
            )
            try:
                result = self._attempt_fn(task)(task)
            except SweepTaskError:
                # already classified and wrapped (a nested executor, or
                # a task_fn that raised one directly): re-wrapping here
                # would bury the original task/attempt/cause a level
                # deeper, so pass it through untouched.
                raise
            except _CLASSIFIED_TYPES as exc:
                if _is_fatal(exc):
                    raise SweepTaskError(
                        task, attempt, exc, retryable=False
                    ) from exc
                if attempt > self.retries:
                    raise SweepTaskError(task, attempt, exc) from exc
                bus().emit(
                    "sweep.task_retry",
                    task=task.label,
                    run_id=task.run_id(),
                    attempt=attempt,
                    error=type(exc).__name__,
                    cause=_cause_name(exc),
                )
            else:
                self._record(task, result)
                return result

    def _run_pool(
        self,
        tasks: list[SweepTask],
        pending: list[int],
        results: list[StrategyRunResult | None],
    ) -> None:
        pool = ProcessPoolExecutor(
            max_workers=min(self.max_workers, len(pending))
        )
        clean = False
        try:
            # (task index, attempt number, future); failed attempts
            # append their retry to the end of the queue.
            inflight: list[tuple[int, int, Future]] = []
            for i in pending:
                bus().emit(
                    "sweep.task_start",
                    task=tasks[i].label,
                    run_id=tasks[i].run_id(),
                    attempt=1,
                )
                inflight.append(
                    (
                        i,
                        1,
                        pool.submit(self._attempt_fn(tasks[i]), tasks[i]),
                    )
                )
            cursor = 0
            while cursor < len(inflight):
                i, attempt, future = inflight[cursor]
                cursor += 1
                try:
                    result = future.result(timeout=self.timeout_s)
                except SweepTaskError:
                    # see _run_inline: never double-wrap.
                    raise
                except _CLASSIFIED_TYPES as exc:
                    if _is_fatal(exc):
                        raise SweepTaskError(
                            tasks[i], attempt, exc, retryable=False
                        ) from exc
                    if attempt > self.retries:
                        raise SweepTaskError(
                            tasks[i], attempt, exc
                        ) from exc
                    bus().emit(
                        "sweep.task_retry",
                        task=tasks[i].label,
                        run_id=tasks[i].run_id(),
                        attempt=attempt,
                        error=type(exc).__name__,
                        cause=_cause_name(exc),
                    )
                    inflight.append(
                        (
                            i,
                            attempt + 1,
                            pool.submit(
                                self._attempt_fn(tasks[i]), tasks[i]
                            ),
                        )
                    )
                else:
                    results[i] = result
                    self._record(tasks[i], result)
            clean = True
        finally:
            # On failure, drop queued work and do not block on any
            # still-running (possibly stuck) worker.
            pool.shutdown(wait=clean, cancel_futures=not clean)
