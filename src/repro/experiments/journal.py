"""Crash-safe sweep journal: resume interrupted sweeps cell by cell.

The result cache (:mod:`repro.experiments.cache`) already memoizes
completed cells, but it is optional, shared across sweeps, and keyed
only by experiment digest - it cannot say *which sweep* a result
belongs to or whether a sweep finished.  The journal is the
sweep-scoped complement: an append-only JSONL file where the executor
records each completed cell (digest + full-fidelity result) the moment
it finishes, flushed and fsynced so a ``kill -9`` never loses a
completed cell.

On resume (``ParallelSweepExecutor(..., resume=True)``) completed
cells are served from the journal and only the remainder executes.
Because results round-trip through the same serializer as the cache
(floats via ``repr``), a killed-and-resumed sweep produces output
byte-identical to an uninterrupted run at the same seed.

A torn tail - the partial last line a crash can leave behind even
with fsync (the crash may land mid-``write``) - is tolerated and
truncated away on load.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.experiments.cache import result_from_json, result_to_json
from repro.experiments.runner import StrategyRunResult

#: bump when the journal line layout changes; mismatched lines are
#: ignored on load (the cells simply re-run).
JOURNAL_SCHEMA_VERSION = 1


class JournalHeaderMismatchError(ValueError):
    """The journal on disk was written by a *different* sweep (other
    seed set, fault plan, or task grid); resuming would silently mix
    incompatible results, so the executor refuses instead."""


class SweepJournal:
    """Append-only completed-cell log for one sweep invocation.

    The first line may be a ``kind: "header"`` record identifying the
    sweep that wrote the journal (task-grid fingerprint, seeds, fault
    plans); resume compares it against the current sweep and refuses a
    mismatch.  Journals written before headers existed load normally.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    # ------------------------------------------------------------------
    def load(self) -> dict[str, StrategyRunResult]:
        """Completed cells keyed by experiment digest.

        Tolerant by construction: a missing file is an empty journal;
        a torn or unparsable line (interrupted write) ends the scan -
        everything before it is intact because lines are appended
        atomically in order.
        """
        completed: dict[str, StrategyRunResult] = {}
        try:
            data = self.path.read_bytes()
        except FileNotFoundError:
            return completed
        valid_bytes = 0
        for raw in data.splitlines(keepends=True):
            line = raw.decode(errors="replace").strip()
            if not line:
                valid_bytes += len(raw)
                continue
            try:
                blob = json.loads(line)
                if (
                    not isinstance(blob, dict)
                    or blob.get("schema") != JOURNAL_SCHEMA_VERSION
                ):
                    valid_bytes += len(raw)
                    continue
                if blob.get("kind") == "header":
                    # sweep-identity record, not a completed cell;
                    # must be skipped *before* the digest lookup or
                    # the torn-tail branch would truncate it away.
                    valid_bytes += len(raw)
                    continue
                completed[blob["digest"]] = result_from_json(
                    blob["result"]
                )
            except (json.JSONDecodeError, KeyError, TypeError,
                    ValueError, IndexError):
                # torn tail from a crash mid-append: nothing after it
                # was recorded.  Truncate it away so future appends
                # land on an intact prefix, and re-run those cells.
                with open(self.path, "r+b") as handle:
                    handle.truncate(valid_bytes)
                break
            valid_bytes += len(raw)
        return completed

    def run_ids(self) -> dict[str, str]:
        """Telemetry run-ids of journaled cells, keyed by digest.

        Lets ``sweep --resume`` (and ``repro trace``) associate each
        completed cell with its ``task-<run_id>.jsonl`` trace file.
        Cells journaled without telemetry are absent.
        """
        return self._field_by_digest("run_id")

    def traceparents(self) -> dict[str, str]:
        """Trace-context handoffs of journaled cells, keyed by digest.

        A resumed sweep re-announces each reused cell with the
        traceparent the original sweep assigned it, so the stitched
        trace tree stays whole across the kill/resume boundary.
        """
        return self._field_by_digest("trace")

    def _field_by_digest(self, field: str) -> dict[str, str]:
        values: dict[str, str] = {}
        try:
            data = self.path.read_bytes()
        except FileNotFoundError:
            return values
        for raw in data.splitlines():
            line = raw.decode(errors="replace").strip()
            if not line:
                continue
            try:
                blob = json.loads(line)
            except json.JSONDecodeError:
                break  # torn tail; load() handles truncation
            if not isinstance(blob, dict) or blob.get("kind") == "header":
                continue
            digest = blob.get("digest")
            value = blob.get(field)
            if isinstance(digest, str) and isinstance(value, str):
                values[digest] = value
        return values

    # ------------------------------------------------------------------
    def read_header(self) -> dict | None:
        """The sweep-identity header, or ``None`` for a missing /
        empty / pre-header (legacy) journal."""
        try:
            data = self.path.read_bytes()
        except FileNotFoundError:
            return None
        for raw in data.splitlines():
            line = raw.decode(errors="replace").strip()
            if not line:
                continue
            try:
                blob = json.loads(line)
            except json.JSONDecodeError:
                return None
            if (
                isinstance(blob, dict)
                and blob.get("kind") == "header"
            ):
                header = dict(blob)
                header.pop("schema", None)
                header.pop("kind", None)
                return header
            return None  # first record is a cell: legacy journal
        return None

    def write_header(self, header: dict) -> None:
        """Record the sweep identity as the first journal line."""
        self._append_line(
            {
                "schema": JOURNAL_SCHEMA_VERSION,
                "kind": "header",
                **header,
            }
        )

    def append(
        self,
        digest: str,
        label: str,
        result: StrategyRunResult,
        run_id: str | None = None,
        trace: str | None = None,
    ) -> None:
        """Record one completed cell durably (flush + fsync) so the
        entry survives the process dying immediately after.

        ``run_id`` is the cell's telemetry run identifier; carrying it
        here lets a resumed sweep stitch the per-cell trace files of a
        killed sweep into one timeline (``load`` tolerates its absence
        in legacy journals).  ``trace`` is the traceparent handed to
        the cell's worker, preserved for the same cross-resume
        stitching.
        """
        record = {
            "schema": JOURNAL_SCHEMA_VERSION,
            "digest": digest,
            "task": label,
            "result": result_to_json(result),
        }
        if run_id is not None:
            record["run_id"] = run_id
        if trace is not None:
            record["trace"] = trace
        self._append_line(record)

    def _append_line(self, record: dict) -> None:
        line = json.dumps(record, separators=(",", ":"))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def clear(self) -> None:
        """Start the journal over (a fresh, non-resumed sweep)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text("")
