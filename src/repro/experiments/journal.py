"""Crash-safe sweep journal: resume interrupted sweeps cell by cell.

The result cache (:mod:`repro.experiments.cache`) already memoizes
completed cells, but it is optional, shared across sweeps, and keyed
only by experiment digest - it cannot say *which sweep* a result
belongs to or whether a sweep finished.  The journal is the
sweep-scoped complement: an append-only JSONL file where the executor
records each completed cell (digest + full-fidelity result) the moment
it finishes, flushed and fsynced so a ``kill -9`` never loses a
completed cell.

On resume (``ParallelSweepExecutor(..., resume=True)``) completed
cells are served from the journal and only the remainder executes.
Because results round-trip through the same serializer as the cache
(floats via ``repr``), a killed-and-resumed sweep produces output
byte-identical to an uninterrupted run at the same seed.

A torn tail - the partial last line a crash can leave behind even
with fsync (the crash may land mid-``write``) - is tolerated and
truncated away on load.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.experiments.cache import result_from_json, result_to_json
from repro.experiments.runner import StrategyRunResult

#: bump when the journal line layout changes; mismatched lines are
#: ignored on load (the cells simply re-run).
JOURNAL_SCHEMA_VERSION = 1


class SweepJournal:
    """Append-only completed-cell log for one sweep invocation."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    # ------------------------------------------------------------------
    def load(self) -> dict[str, StrategyRunResult]:
        """Completed cells keyed by experiment digest.

        Tolerant by construction: a missing file is an empty journal;
        a torn or unparsable line (interrupted write) ends the scan -
        everything before it is intact because lines are appended
        atomically in order.
        """
        completed: dict[str, StrategyRunResult] = {}
        try:
            data = self.path.read_bytes()
        except FileNotFoundError:
            return completed
        valid_bytes = 0
        for raw in data.splitlines(keepends=True):
            line = raw.decode(errors="replace").strip()
            if not line:
                valid_bytes += len(raw)
                continue
            try:
                blob = json.loads(line)
                if (
                    not isinstance(blob, dict)
                    or blob.get("schema") != JOURNAL_SCHEMA_VERSION
                ):
                    valid_bytes += len(raw)
                    continue
                completed[blob["digest"]] = result_from_json(
                    blob["result"]
                )
            except (json.JSONDecodeError, KeyError, TypeError,
                    ValueError, IndexError):
                # torn tail from a crash mid-append: nothing after it
                # was recorded.  Truncate it away so future appends
                # land on an intact prefix, and re-run those cells.
                with open(self.path, "r+b") as handle:
                    handle.truncate(valid_bytes)
                break
            valid_bytes += len(raw)
        return completed

    def append(
        self, digest: str, label: str, result: StrategyRunResult
    ) -> None:
        """Record one completed cell durably (flush + fsync) so the
        entry survives the process dying immediately after."""
        line = json.dumps(
            {
                "schema": JOURNAL_SCHEMA_VERSION,
                "digest": digest,
                "task": label,
                "result": result_to_json(result),
            },
            separators=(",", ":"),
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def clear(self) -> None:
        """Start the journal over (a fresh, non-resumed sweep)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text("")
