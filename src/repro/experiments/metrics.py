"""Comparison metrics used by the figure generators."""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.runner import StrategyRunResult
from repro.util.stats import improvement_pct

__all__ = ["improvement_pct", "normalized_series", "best_improvement"]


def normalized_series(
    baseline: StrategyRunResult,
    others: Sequence[StrategyRunResult],
    metric: str = "time",
) -> dict[str, float]:
    """Normalize ``others`` to ``baseline`` (paper figures plot
    normalized values; < 1.0 means better than default).

    ``metric`` is ``"time"`` or ``"energy"``.
    """
    base = _metric(baseline, metric)
    out = {baseline.strategy: 1.0}
    for result in others:
        out[result.strategy] = _metric(result, metric) / base
    return out


def best_improvement(
    baseline: StrategyRunResult,
    others: Sequence[StrategyRunResult],
    metric: str = "time",
) -> float:
    """Largest percentage improvement over the baseline."""
    base = _metric(baseline, metric)
    return max(
        improvement_pct(base, _metric(r, metric)) for r in others
    )


def _metric(result: StrategyRunResult, metric: str) -> float:
    if metric == "time":
        return result.time_s
    if metric == "energy":
        if result.energy_j is None:
            raise ValueError(
                f"{result.machine} has no energy counters; "
                "energy metric unavailable"
            )
        return result.energy_j
    raise ValueError(f"unknown metric {metric!r}")
