"""Comparison metrics used by the figure generators."""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.runner import StrategyRunResult
from repro.util.stats import improvement_pct

__all__ = ["improvement_pct", "normalized_series", "best_improvement"]


def normalized_series(
    baseline: StrategyRunResult,
    others: Sequence[StrategyRunResult],
    metric: str = "time",
) -> dict[str, float]:
    """Normalize ``others`` to ``baseline`` (paper figures plot
    normalized values; < 1.0 means better than default).

    ``metric`` is ``"time"`` or ``"energy"``.

    Raises :class:`ValueError` when the baseline metric is ``0.0`` (a
    degenerate/degraded baseline run): normalizing to it would emit
    ``inf``/``nan`` into every downstream figure.
    """
    base = _metric(baseline, metric)
    if base == 0.0:
        raise ValueError(
            f"cannot normalize to baseline strategy "
            f"{baseline.strategy!r}: its {metric} metric is 0.0 "
            f"(degenerate baseline run on {baseline.machine})"
        )
    out = {baseline.strategy: 1.0}
    for result in others:
        out[result.strategy] = _metric(result, metric) / base
    return out


def best_improvement(
    baseline: StrategyRunResult,
    others: Sequence[StrategyRunResult],
    metric: str = "time",
) -> float:
    """Largest percentage improvement over the baseline.

    Raises :class:`ValueError` when ``others`` is empty instead of
    letting ``max()`` fail with its bare empty-sequence error.
    """
    if not others:
        raise ValueError(
            f"best_improvement over baseline strategy "
            f"{baseline.strategy!r} needs at least one comparison "
            "result; got an empty sequence"
        )
    base = _metric(baseline, metric)
    return max(
        improvement_pct(base, _metric(r, metric)) for r in others
    )


def _metric(result: StrategyRunResult, metric: str) -> float:
    if metric == "time":
        return result.time_s
    if metric == "energy":
        if result.energy_j is None:
            raise ValueError(
                f"{result.machine} has no energy counters; "
                "energy metric unavailable"
            )
        return result.energy_j
    raise ValueError(f"unknown metric {metric!r}")
