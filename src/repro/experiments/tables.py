"""Data generators for the paper's tables.

* **Table I** - the ARCS search-parameter sets per machine;
* **Table II** - the optimal configuration chosen by ARCS-Offline for
  SP's four major regions at TDP.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import arcs_thread_values
from repro.core.history import HistoryStore
from repro.experiments.figures import SP_MAJOR_REGIONS
from repro.experiments.runner import ExperimentSetup, run_arcs_offline
from repro.machine.spec import MachineSpec, crill, minotaur
from repro.workloads.sp import sp_application


@dataclass(frozen=True)
class Table1Row:
    parameter: str
    values: str


def table1_search_space(
    primary: MachineSpec | None = None,
    secondary: MachineSpec | None = None,
) -> list[Table1Row]:
    """Table I: the set of ARCS search parameters."""
    primary = primary or crill()
    secondary = secondary or minotaur()

    def fmt_threads(spec: MachineSpec) -> str:
        return ", ".join(
            str(v) for v in arcs_thread_values(spec)
        ) + ", default"

    return [
        Table1Row(
            parameter=f"Number of threads ({primary.name.capitalize()})",
            values=fmt_threads(primary),
        ),
        Table1Row(
            parameter=f"Number of threads ({secondary.name.capitalize()})",
            values=fmt_threads(secondary),
        ),
        Table1Row(
            parameter="Schedule Type",
            values="dynamic, static, guided, default",
        ),
        Table1Row(
            parameter="Chunk Size",
            values="1, 8, 16, 32, 64, 128, 256, 512, default",
        ),
    ]


@dataclass(frozen=True)
class Table2Row:
    region: str
    config: str


def table2_sp_optimal_configs(
    setup: ExperimentSetup | None = None,
    history: HistoryStore | None = None,
) -> list[Table2Row]:
    """Table II: optimal configurations chosen by ARCS-Offline for SP's
    four most time-consuming regions at TDP."""
    setup = setup or ExperimentSetup(spec=crill(), repeats=1)
    result = run_arcs_offline(
        sp_application("B"), setup, history=history
    )
    return [
        Table2Row(region=name, config=result.chosen_configs[name].label())
        for name in SP_MAJOR_REGIONS
    ]
