"""JSON codecs for the leaf measurement records.

These round-trip :class:`~repro.openmp.types.OMPConfig`,
:class:`~repro.openmp.records.RegionTotals`,
:class:`~repro.workloads.base.AppRunResult` and
:class:`~repro.core.overhead.OverheadReport` through plain JSON with
full float fidelity (Python serializes floats via ``repr``, so values
survive a dump/load cycle bit-for-bit - the property every
byte-identical-resume guarantee in this repo leans on).

They used to live inside :mod:`repro.experiments.cache`; they are a
leaf module now so that the run-checkpoint layer (which the runner
imports) can share them without creating an import cycle through the
cache (which imports the runner).
"""

from __future__ import annotations

import hashlib

from repro.core.overhead import OverheadReport
from repro.openmp.records import RegionTotals
from repro.openmp.types import OMPConfig, ScheduleKind
from repro.workloads.base import Application, AppRunResult


def app_fingerprint(app: Application) -> str:
    """A deterministic content fingerprint of an application.

    ``repr`` of the frozen dataclass tree covers every region profile
    field, so two apps sharing a (name, workload) label but differing
    in timesteps or region characterization never collide.
    """
    return hashlib.sha256(repr(app).encode()).hexdigest()[:16]


def config_to_json(config: OMPConfig) -> dict:
    return {
        "n_threads": config.n_threads,
        "schedule": config.schedule.value,
        "chunk": config.chunk,
    }


def config_from_json(blob: dict) -> OMPConfig:
    return OMPConfig(
        n_threads=int(blob["n_threads"]),
        schedule=ScheduleKind(blob["schedule"]),
        chunk=None if blob["chunk"] is None else int(blob["chunk"]),
    )


def totals_to_json(totals: RegionTotals) -> dict:
    return {
        "region_name": totals.region_name,
        "calls": totals.calls,
        "implicit_task_s": totals.implicit_task_s,
        "loop_s": totals.loop_s,
        "barrier_s": totals.barrier_s,
        "energy_j": totals.energy_j,
    }


def totals_from_json(blob: dict) -> RegionTotals:
    return RegionTotals(
        region_name=blob["region_name"],
        calls=int(blob["calls"]),
        implicit_task_s=blob["implicit_task_s"],
        loop_s=blob["loop_s"],
        barrier_s=blob["barrier_s"],
        energy_j=blob["energy_j"],
    )


def run_to_json(run: AppRunResult) -> dict:
    return {
        "app_label": run.app_label,
        "time_s": run.time_s,
        "energy_j": run.energy_j,
        "region_totals": {
            name: totals_to_json(t)
            for name, t in run.region_totals.items()
        },
        "region_miss_rates": {
            name: list(rates)
            for name, rates in run.region_miss_rates.items()
        },
        "total_region_calls": run.total_region_calls,
        "degraded": list(run.degraded),
    }


def run_from_json(blob: dict) -> AppRunResult:
    return AppRunResult(
        app_label=blob["app_label"],
        time_s=blob["time_s"],
        energy_j=blob["energy_j"],
        region_totals={
            name: totals_from_json(t)
            for name, t in blob["region_totals"].items()
        },
        region_miss_rates={
            name: (rates[0], rates[1], rates[2])
            for name, rates in blob["region_miss_rates"].items()
        },
        total_region_calls=int(blob["total_region_calls"]),
        degraded=tuple(blob.get("degraded", ())),
    )


def overhead_to_json(overhead: OverheadReport | None) -> dict | None:
    if overhead is None:
        return None
    return {
        "config_change_s": overhead.config_change_s,
        "config_change_calls": overhead.config_change_calls,
        "instrumentation_s": overhead.instrumentation_s,
        "search_s": overhead.search_s,
    }


def overhead_from_json(blob: dict | None) -> OverheadReport | None:
    if blob is None:
        return None
    return OverheadReport(
        config_change_s=blob["config_change_s"],
        config_change_calls=int(blob["config_change_calls"]),
        instrumentation_s=blob["instrumentation_s"],
        search_s=blob["search_s"],
    )
