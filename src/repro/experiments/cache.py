"""Content-addressed cache for :class:`StrategyRunResult`\\ s.

The ARCS history file already memoizes the *tuning* phase ("the saved
values can be used instead of repeating the search process", paper
Section III-B).  This module extends the same idea to whole
measurements: a sweep cell is a pure function of its experiment
parameters, so its summarized result can be keyed by a deterministic
digest of those parameters and replayed from disk on the next run.

Layout (default root ``results/.cache``)::

    results/.cache/
        <digest>.json          # one cached StrategyRunResult per cell
        history/<digest>.json  # shared tuned HistoryStore per
                               # (app, machine, cap) - see parallel.py

Every entry is stamped with :data:`CACHE_SCHEMA_VERSION`; entries
written by an older schema (or unreadable/corrupt files) are treated
as misses and silently overwritten, never crashes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.experiments.runner import ExperimentSetup, StrategyRunResult
from repro.experiments.serialize import (
    app_fingerprint,
    config_from_json as _config_from_json,
    config_to_json as _config_to_json,
    overhead_from_json as _overhead_from_json,
    overhead_to_json as _overhead_to_json,
    run_from_json as _run_from_json,
    run_to_json as _run_to_json,
)
from repro.faults.plan import plan_fingerprint
from repro.util.atomicio import atomic_write_text
from repro.workloads.base import Application

#: bump whenever the digest inputs or the serialized result layout
#: change; stale entries become cache misses.
CACHE_SCHEMA_VERSION = 1

#: default on-disk location, alongside the regenerated figure data.
DEFAULT_CACHE_DIR = Path("results") / ".cache"


# ---------------------------------------------------------------------------
# digesting
# ---------------------------------------------------------------------------
def _fault_fingerprint(setup: ExperimentSetup) -> str | None:
    """Fingerprint of the setup's fault plan, or ``None`` for clean
    setups.  Returning ``None`` (and omitting the key entirely) keeps
    every pre-existing clean-run digest byte-identical."""
    return plan_fingerprint(setup.fault_plan)


def _capsched_fingerprint(setup: ExperimentSetup) -> str | None:
    """Fingerprint of the setup's cap schedule, or ``None`` when the
    cap is static - omitted from digests so pre-existing static-cap
    digests stay byte-identical."""
    schedule = setup.cap_schedule
    if schedule is None or not schedule:
        return None
    return schedule.fingerprint()


def experiment_digest(
    app: Application, setup: ExperimentSetup, strategy: str
) -> str:
    """Deterministic hex digest identifying one sweep cell.

    Keys every input that influences the measurement: application
    (name, workload, content fingerprint), machine, power cap,
    strategy, repeats, seed, noise level and the online search budget.
    """
    key = {
        "schema": CACHE_SCHEMA_VERSION,
        "app": app.name,
        "workload": app.workload,
        "fingerprint": app_fingerprint(app),
        "machine": setup.spec.name,
        "cap_w": setup.cap_w,
        "strategy": strategy,
        "repeats": setup.repeats,
        "seed": setup.seed,
        "noise_sigma": setup.noise_sigma,
        "online_max_evals": setup.online_max_evals,
    }
    faults = _fault_fingerprint(setup)
    if faults is not None:
        key["faults"] = faults
    capsched = _capsched_fingerprint(setup)
    if capsched is not None:
        key["capsched"] = capsched
    blob = json.dumps(key, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def tuning_digest(app: Application, setup: ExperimentSetup) -> str:
    """Digest for the shared tuned history of one (app, machine, cap).

    Strategy, repeats and the online budget are deliberately excluded:
    every offline cell of the same experiment context replays the same
    exhaustive tuning result.
    """
    key = {
        "schema": CACHE_SCHEMA_VERSION,
        "app": app.name,
        "workload": app.workload,
        "fingerprint": app_fingerprint(app),
        "machine": setup.spec.name,
        "cap_w": setup.cap_w,
        "seed": setup.seed,
        "noise_sigma": setup.noise_sigma,
    }
    faults = _fault_fingerprint(setup)
    if faults is not None:
        key["faults"] = faults
    blob = json.dumps(key, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# ---------------------------------------------------------------------------
# StrategyRunResult <-> JSON
# ---------------------------------------------------------------------------
# The sub-object codecs (_config_to_json and friends, imported above)
# live in repro.experiments.serialize so the run-checkpoint layer can
# share them; the StrategyRunResult codec stays here because it needs
# the runner's types and the cache schema version.
def result_to_json(result: StrategyRunResult) -> dict:
    """Full-fidelity JSON form of a result (floats round-trip exactly
    through ``json`` because Python serializes them via ``repr``)."""
    return {
        "strategy": result.strategy,
        "app_label": result.app_label,
        "machine": result.machine,
        "cap_w": result.cap_w,
        "time_s": result.time_s,
        "energy_j": result.energy_j,
        "runs": [_run_to_json(r) for r in result.runs],
        "chosen_configs": {
            name: _config_to_json(cfg)
            for name, cfg in result.chosen_configs.items()
        },
        "overhead": _overhead_to_json(result.overhead),
        "tuning_runs": result.tuning_runs,
        "degradations": list(result.degradations),
        "cap_changes": list(result.cap_changes),
    }


def result_from_json(blob: dict) -> StrategyRunResult:
    return StrategyRunResult(
        strategy=blob["strategy"],
        app_label=blob["app_label"],
        machine=blob["machine"],
        cap_w=blob["cap_w"],
        time_s=blob["time_s"],
        energy_j=blob["energy_j"],
        runs=tuple(_run_from_json(r) for r in blob["runs"]),
        chosen_configs={
            name: _config_from_json(cfg)
            for name, cfg in blob["chosen_configs"].items()
        },
        overhead=_overhead_from_json(blob["overhead"]),
        tuning_runs=int(blob["tuning_runs"]),
        degradations=tuple(blob.get("degradations", ())),
        cap_changes=tuple(blob.get("cap_changes", ())),
    )


# ---------------------------------------------------------------------------
# the cache
# ---------------------------------------------------------------------------
@dataclass
class CacheStats:
    """Hit/miss counters (misses include invalidated entries)."""

    hits: int = 0
    misses: int = 0
    invalidated: int = 0
    writes: int = 0


@dataclass
class ExperimentCache:
    """On-disk result cache keyed by :func:`experiment_digest`.

    All reads degrade gracefully: a missing, corrupt, or
    schema-mismatched entry is a miss, never an exception.  Writes are
    atomic (temp file + ``os.replace``) so concurrent sweep workers
    and interrupted runs cannot leave torn entries behind.
    """

    root: Path = DEFAULT_CACHE_DIR
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    # -- paths ---------------------------------------------------------
    def result_path(
        self, app: Application, setup: ExperimentSetup, strategy: str
    ) -> Path:
        return self.root / f"{experiment_digest(app, setup, strategy)}.json"

    def history_path(
        self, app: Application, setup: ExperimentSetup
    ) -> Path:
        """Where the shared tuned history for this (app, machine, cap)
        lives; offline cells replay it instead of re-tuning."""
        return self.root / "history" / f"{tuning_digest(app, setup)}.json"

    # -- read / write --------------------------------------------------
    def get(
        self, app: Application, setup: ExperimentSetup, strategy: str
    ) -> StrategyRunResult | None:
        path = self.result_path(app, setup, strategy)
        try:
            blob = json.loads(path.read_text())
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            self.stats.invalidated += 1
            self.stats.misses += 1
            return None
        if (
            not isinstance(blob, dict)
            or blob.get("schema") != CACHE_SCHEMA_VERSION
        ):
            self.stats.invalidated += 1
            self.stats.misses += 1
            return None
        try:
            result = result_from_json(blob["result"])
        except (KeyError, TypeError, ValueError, IndexError):
            self.stats.invalidated += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(
        self,
        app: Application,
        setup: ExperimentSetup,
        strategy: str,
        result: StrategyRunResult,
    ) -> Path:
        path = self.result_path(app, setup, strategy)
        payload = json.dumps(
            {
                "schema": CACHE_SCHEMA_VERSION,
                "digest": path.stem,
                "app": app.label,
                "machine": setup.spec.name,
                "strategy": strategy,
                "result": result_to_json(result),
            },
            indent=2,
        )
        atomic_write_text(path, payload)
        self.stats.writes += 1
        return path

    def clear(self) -> int:
        """Remove every cached entry (results and shared histories);
        returns the number of files removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in sorted(self.root.rglob("*.json")):
            path.unlink()
            removed += 1
        return removed
