"""The ARCS controller - public facade bundling APEX + policy.

Typical use (also see ``examples/quickstart.py``)::

    node = SimulatedNode(crill())
    runtime = OpenMPRuntime(node)
    node.set_power_cap(85.0); node.settle_after_cap()

    arcs = ARCS(runtime, strategy="nelder-mead")   # ARCS-Online
    arcs.attach()
    app.run(runtime)
    arcs.finalize()                                # saves history
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.apex.instrument import ApexOmptBridge
from repro.core.history import HistoryStore
from repro.core.overhead import OverheadReport
from repro.core.policy import ArcsPolicy
from repro.harmony.space import SearchSpace
from repro.openmp.runtime import OpenMPRuntime
from repro.openmp.types import OMPConfig

if TYPE_CHECKING:
    from repro.service.source import ConfigKey, ConfigSource


class ARCS:
    """Adaptive Runtime Configuration Selection for one runtime."""

    def __init__(
        self,
        runtime: OpenMPRuntime,
        strategy: str = "nelder-mead",
        space: SearchSpace | None = None,
        max_evals: int = 40,
        history: HistoryStore | None = None,
        history_key: str | None = None,
        replay: bool = False,
        strict_replay: bool = True,
        selective_threshold_s: float | None = None,
        cap_aware: bool = False,
        objective: str = "time",
        seed: int = 0,
        batch: bool | None = None,
        source: "ConfigSource | None" = None,
        source_key: "ConfigKey | None" = None,
        surrogate_orders: (
            dict[str, tuple[tuple[int, ...], ...]] | None
        ) = None,
    ) -> None:
        if source is not None and source_key is None:
            raise ValueError("a config source needs a source_key")
        if replay:
            if history is None or history_key is None:
                raise ValueError(
                    "replay mode needs a history store and key"
                )
            if (
                source is not None
                and source_key is not None
                and not history.has(history_key)
            ):
                # replay with an empty local history: ask the chain
                # (remote service -> warm memo) before giving up.  A
                # chain miss or failure degrades to the usual
                # HistoryKeyMissing from history.load below.
                entry = source.lookup(source_key)
                if entry is not None:
                    configs_, values_ = entry
                    history.save(
                        history_key,
                        configs_,
                        {
                            r: v
                            for r, v in values_.items()
                            if v is not None
                        },
                    )
            replay_configs: dict[str, OMPConfig] | None = history.load(
                history_key
            )
        else:
            replay_configs = None
        self.runtime = runtime
        self.history = history
        self.history_key = history_key
        self.source = source
        self.source_key = source_key
        self.bridge = ApexOmptBridge(runtime)
        self.policy = ArcsPolicy(
            runtime,
            strategy=strategy,
            space=space,
            max_evals=max_evals,
            replay=replay_configs,
            strict_replay=strict_replay,
            selective_threshold_s=selective_threshold_s,
            cap_aware=cap_aware,
            objective=objective,
            seed=seed,
            batch=batch,
            surrogate_orders=surrogate_orders,
        )
        self._attached = False
        self._config_calls_at_attach = 0
        self._config_time_at_attach = 0.0

    # ------------------------------------------------------------------
    def attach(self) -> None:
        """Hook into the runtime's OMPT interface and register the ARCS
        policy with the APEX policy engine."""
        self.bridge.attach()
        self.bridge.policy_engine.register(self.policy)
        self._attached = True
        self._config_calls_at_attach = self.runtime.config_change_calls
        self._config_time_at_attach = self.runtime.config_change_time_s

    def detach(self) -> None:
        self.bridge.policy_engine.deregister(self.policy)
        self.bridge.detach()
        self._attached = False

    def finalize(self) -> None:
        """Shut down APEX; persist best configurations if a history
        store was provided (search modes only), and publish them
        through the config-source chain so other tenants of the
        tuning service inherit this tuning."""
        if self._attached:
            self.detach()
        self.bridge.shutdown()
        if (
            self.history is not None
            and self.history_key is not None
            and self.policy.replay is None
        ):
            configs = self.policy.best_configs()
            if configs:
                values = self.policy.best_values()
                self.history.save(self.history_key, configs, values)
                if self.source is not None and self.source_key is not None:
                    self.source.publish(
                        self.source_key, (configs, dict(values))
                    )

    # ------------------------------------------------------------------
    @property
    def converged(self) -> bool:
        return self.policy.all_converged()

    def chosen_configs(self) -> dict[str, OMPConfig]:
        """Best (or replayed) configuration per region - Table II."""
        return self.policy.best_configs()

    def degradations(self) -> dict[str, str]:
        """Regions whose tuning gave up and fell back to the default
        configuration, with the reason for each (empty when healthy)."""
        return self.policy.degradations()

    def overhead_report(self) -> OverheadReport:
        """The Section III-C overhead breakdown for this run."""
        return OverheadReport(
            config_change_s=self.runtime.config_change_time_s
            - self._config_time_at_attach,
            config_change_calls=self.runtime.config_change_calls
            - self._config_calls_at_attach,
            instrumentation_s=self.bridge.instrumentation_time_s,
            search_s=self.policy.search_overhead_s(),
        )
