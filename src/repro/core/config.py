"""The ARCS search space (paper Table I).

Reconstructed values (the OCR'd text drops '1' and '0' digits; the
reconstruction below is the unique one consistent with the machines):

=====================  ==========================================
Parameter              Set of values
=====================  ==========================================
Threads (Crill)        2, 4, 8, 16, 24, 32, default
Threads (Minotaur)     10, 20, 40, 80, 120, 160, default
Schedule type          dynamic, static, guided, default
Chunk size             1, 8, 16, 32, 64, 128, 256, 512, default
=====================  ==========================================

"default" resolves to: max hardware threads (threads), ``static``
(schedule) and the specification-default chunk (``None``).  Because the
resolved defaults coincide with existing members (max threads is in the
thread list; static is in the schedule list), the runtime space drops
the redundant sentinels - except for the chunk dimension, where
"default" (``None``) is a genuinely distinct ninth value.
"""

from __future__ import annotations

from repro.harmony.space import Parameter, SearchSpace
from repro.machine.spec import MachineSpec
from repro.openmp.types import OMPConfig, ScheduleKind

#: Table I chunk sizes; ``None`` is the spec-default sentinel.
ARCS_CHUNK_VALUES: tuple = (None, 1, 8, 16, 32, 64, 128, 256, 512)

#: Table I schedule types ("default" resolves to static).
ARCS_SCHEDULE_VALUES: tuple[ScheduleKind, ...] = (
    ScheduleKind.STATIC,
    ScheduleKind.DYNAMIC,
    ScheduleKind.GUIDED,
)

_TABLE1_THREADS = {
    "crill": (2, 4, 8, 16, 24, 32),
    "minotaur": (10, 20, 40, 80, 120, 160),
}


def arcs_thread_values(spec: MachineSpec) -> tuple[int, ...]:
    """Thread counts ARCS explores on ``spec`` (Table I for the paper's
    machines; doubling series up to the hardware-thread count for
    anything else)."""
    known = _TABLE1_THREADS.get(spec.name)
    if known is not None:
        return known
    values = []
    n = 2
    while n < spec.total_hw_threads:
        values.append(n)
        n *= 2
    values.append(spec.total_hw_threads)
    return tuple(values)


def dvfs_frequency_values(
    spec: MachineSpec, n_states: int = 5
) -> tuple:
    """P-state ceilings for the future-work DVFS dimension: ``None``
    (hardware managed) plus ``n_states`` evenly spaced frequencies from
    ``f_min`` to ``f_base``."""
    if n_states < 2:
        raise ValueError(f"n_states must be >= 2, got {n_states}")
    lo, hi = spec.min_freq_ghz, spec.base_freq_ghz
    step = (hi - lo) / (n_states - 1)
    states = tuple(
        round(lo + i * step, 3) for i in range(n_states)
    )
    return (None, *states)


def search_space_for(
    spec: MachineSpec, include_dvfs: bool = False
) -> SearchSpace:
    """The ARCS search space for one machine (Table I).

    ``include_dvfs=True`` adds the paper's future-work fourth
    dimension: a per-region userspace frequency ceiling.
    """
    parameters = [
        Parameter(name="n_threads", values=arcs_thread_values(spec)),
        Parameter(name="schedule", values=ARCS_SCHEDULE_VALUES),
        Parameter(name="chunk", values=ARCS_CHUNK_VALUES),
    ]
    if include_dvfs:
        parameters.append(
            Parameter(name="freq_ghz", values=dvfs_frequency_values(spec))
        )
    return SearchSpace(parameters=tuple(parameters))


def config_from_point(point: dict[str, object]) -> OMPConfig:
    """Decode a search-space point into an :class:`OMPConfig`."""
    schedule = point["schedule"]
    if not isinstance(schedule, ScheduleKind):
        schedule = ScheduleKind(str(schedule))
    chunk = point["chunk"]
    return OMPConfig(
        n_threads=int(point["n_threads"]),  # type: ignore[arg-type]
        schedule=schedule,
        chunk=None if chunk is None else int(chunk),  # type: ignore[arg-type]
    )


def point_from_config(config: OMPConfig) -> dict[str, object]:
    """Inverse of :func:`config_from_point`."""
    return {
        "n_threads": config.n_threads,
        "schedule": config.schedule,
        "chunk": config.chunk,
    }


def default_start_point(
    spec: MachineSpec, space: SearchSpace
) -> tuple[int, ...]:
    """Index vector nearest the default configuration - simplex
    strategies start their search here."""
    threads = arcs_thread_values(spec)
    point: dict[str, object] = {
        "n_threads": threads[-1],
        "schedule": ScheduleKind.STATIC,
        "chunk": None,
    }
    if any(p.name == "freq_ghz" for p in space.parameters):
        point["freq_ghz"] = None       # hardware-managed frequency
    return space.encode(point)
