"""ARCS - Adaptive Runtime Configuration Selection.

The paper's contribution: an APEX policy that gives every OpenMP
parallel region its own Active Harmony tuning session and drives the
OpenMP runtime's configuration (number of threads, schedule, chunk
size) to the per-region optimum for the current power cap, either
online (Nelder-Mead, converging within the run) or offline (exhaustive
tuning run + replay of saved bests).
"""

from repro.core.config import (
    ARCS_CHUNK_VALUES,
    ARCS_SCHEDULE_VALUES,
    arcs_thread_values,
    config_from_point,
    point_from_config,
    search_space_for,
)
from repro.core.controller import ARCS
from repro.core.history import HistoryStore
from repro.core.overhead import OverheadReport
from repro.core.policy import ArcsPolicy

__all__ = [
    "ARCS",
    "ARCS_CHUNK_VALUES",
    "ARCS_SCHEDULE_VALUES",
    "ArcsPolicy",
    "HistoryStore",
    "OverheadReport",
    "arcs_thread_values",
    "config_from_point",
    "point_from_config",
    "search_space_for",
]
