"""Dynamic power-cap schedules.

Section II of the paper motivates ARCS with cluster-level power
management: "the resource manager may ... adjust [nodes'] power level
dynamically.  To get the best per node performance at each power
level, the runtime configurations need to be changed dynamically."  A
:class:`CapSchedule` is the harness-side half of that story - a
declarative list of ``(after_region_invocations, cap_w)`` events that
the runner applies to the simulated RAPL interface mid-run, exercising
the policy's ``cap_aware`` warm-start path end-to-end.

JSON form (the CLI's ``--cap-schedule schedule.json``)::

    {
      "hysteresis_invocations": 4,
      "events": [
        {"after_region_invocations": 30, "cap_w": 70},
        {"after_region_invocations": 60, "cap_w": null}
      ]
    }

``cap_w: null`` means uncapped (TDP-limited).  ``hysteresis_invocations``
defers any further cap change until that many region invocations have
passed since the last applied change; a thrashing schedule therefore
coalesces to its latest target instead of restarting the per-level
tuning sessions on every flip.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from repro.machine.rapl import CapWriteRejectedError
from repro.openmp.runtime import OpenMPRuntime
from repro.telemetry.bus import bus
from repro.util.retry import RetryPolicy

#: attempts per cap-change write before giving up on the event (the
#: same bounded-retry discipline the runner uses for the initial cap).
_CAP_EVENT_WRITE_ATTEMPTS = 3

#: no sleeping: backing off happens in simulated time via
#: ``settle_after_cap`` after every rejection.
_CAP_EVENT_RETRY = RetryPolicy(attempts=_CAP_EVENT_WRITE_ATTEMPTS)


class CapScheduleError(ValueError):
    """A cap schedule (or schedule file) is malformed."""


def cap_label(cap_w: float | None) -> str:
    """Human-readable cap value (``"tdp"`` for uncapped)."""
    return "tdp" if cap_w is None else f"{cap_w:g}W"


@dataclass(frozen=True)
class CapEvent:
    """One scheduled cap change: after ``after_invocations`` region
    invocations have completed, set the package cap to ``cap_w``
    (``None`` = uncapped)."""

    after_invocations: int
    cap_w: float | None

    def __post_init__(self) -> None:
        if self.after_invocations < 1:
            raise CapScheduleError(
                f"after_region_invocations must be >= 1, got "
                f"{self.after_invocations}"
            )
        if self.cap_w is not None and self.cap_w <= 0:
            raise CapScheduleError(
                f"cap_w must be > 0 or null, got {self.cap_w}"
            )


@dataclass(frozen=True)
class CapSchedule:
    """A seedless, deterministic cap timetable for one run."""

    events: tuple[CapEvent, ...] = ()
    hysteresis_invocations: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        if self.hysteresis_invocations < 0:
            raise CapScheduleError(
                f"hysteresis_invocations must be >= 0, got "
                f"{self.hysteresis_invocations}"
            )
        last = 0
        for event in self.events:
            if event.after_invocations <= last:
                raise CapScheduleError(
                    "events must have strictly increasing "
                    "after_region_invocations; "
                    f"{event.after_invocations} follows {last}"
                )
            last = event.after_invocations

    def __bool__(self) -> bool:
        return bool(self.events)

    def to_json(self) -> dict:
        return {
            "hysteresis_invocations": self.hysteresis_invocations,
            "events": [
                {
                    "after_region_invocations": e.after_invocations,
                    "cap_w": e.cap_w,
                }
                for e in self.events
            ],
        }

    @classmethod
    def from_json(cls, blob: dict) -> "CapSchedule":
        if not isinstance(blob, dict):
            raise CapScheduleError(
                f"cap schedule must be a JSON object, got "
                f"{type(blob).__name__}"
            )
        unknown = set(blob) - {"hysteresis_invocations", "events"}
        if unknown:
            raise CapScheduleError(
                f"unknown cap-schedule field(s): {sorted(unknown)}"
            )
        events = blob.get("events", [])
        if not isinstance(events, list):
            raise CapScheduleError("'events' must be a list")
        parsed = []
        for entry in events:
            if not isinstance(entry, dict):
                raise CapScheduleError(
                    f"cap event must be an object, got "
                    f"{type(entry).__name__}"
                )
            extra = set(entry) - {"after_region_invocations", "cap_w"}
            if extra:
                raise CapScheduleError(
                    f"unknown cap-event field(s): {sorted(extra)}"
                )
            try:
                after = int(entry["after_region_invocations"])
            except KeyError:
                raise CapScheduleError(
                    "cap event is missing required field "
                    "'after_region_invocations'"
                ) from None
            cap = entry.get("cap_w")
            parsed.append(
                CapEvent(after, None if cap is None else float(cap))
            )
        return cls(
            events=tuple(parsed),
            hysteresis_invocations=int(
                blob.get("hysteresis_invocations", 0)
            ),
        )

    def fingerprint(self) -> str:
        """Short content fingerprint (cache digests, checkpoint meta)."""
        blob = json.dumps(
            self.to_json(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode()).hexdigest()[:16]


def load_cap_schedule(path: str | Path) -> CapSchedule:
    """Load a :class:`CapSchedule` from a JSON file; raises
    :class:`CapScheduleError` naming the path on any problem."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise CapScheduleError(
            f"cannot read cap schedule {path}: {exc}"
        ) from exc
    try:
        blob = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CapScheduleError(
            f"cap schedule {path} is not valid JSON: {exc}"
        ) from exc
    try:
        return CapSchedule.from_json(blob)
    except CapScheduleError as exc:
        raise CapScheduleError(f"cap schedule {path}: {exc}") from None


class CapScheduleApplier:
    """Stateful cursor that walks one run through a schedule.

    Driven once per completed region invocation.  When several events
    have fallen due (or hysteresis deferred earlier ones), only the
    *latest* target is applied - intermediate flips of a thrashing
    schedule collapse away instead of each restarting the per-level
    tuning sessions.
    """

    def __init__(self, schedule: CapSchedule) -> None:
        self.schedule = schedule
        self._applied_idx = -1
        self._last_change_n: int | None = None
        #: human-readable record of every applied change, surfaced as
        #: ``StrategyRunResult.cap_changes``.
        self.log: list[str] = []

    def on_invocation(self, n: int, runtime: OpenMPRuntime) -> None:
        """Apply any due cap event; ``n`` is the 1-based count of
        completed region invocations this run."""
        target_idx = self._applied_idx
        for idx, event in enumerate(self.schedule.events):
            if event.after_invocations <= n:
                target_idx = max(target_idx, idx)
        if target_idx <= self._applied_idx:
            return
        if (
            self._last_change_n is not None
            and n - self._last_change_n
            < self.schedule.hysteresis_invocations
        ):
            return  # deferred; re-examined on the next invocation
        node = runtime.node
        target = self.schedule.events[target_idx]
        before = node.effective_cap_w(0)
        if target.cap_w == before:
            # flipping back to the level already in force: nothing to
            # write, and no hysteresis clock restart either.
            self._applied_idx = target_idx
            return
        try:
            _CAP_EVENT_RETRY.run(
                lambda: node.set_power_cap(target.cap_w),
                retry_on=CapWriteRejectedError,
                site="cap.schedule_write",
                on_failure=lambda _attempt, _exc: node.settle_after_cap(),
            )
        except CapWriteRejectedError:
            runtime.degradations.append(
                f"cap schedule: change to {cap_label(target.cap_w)} at "
                f"invocation {n} was rejected "
                f"{_CAP_EVENT_WRITE_ATTEMPTS} times; keeping "
                f"{cap_label(before)}"
            )
            self._applied_idx = target_idx
            bus().emit(
                "cap.change_rejected",
                invocation=n,
                cap_from=cap_label(before),
                cap_to=cap_label(target.cap_w),
            )
            return
        node.settle_after_cap()
        self._applied_idx = target_idx
        self._last_change_n = n
        self.log.append(
            f"invocation {n}: power cap {cap_label(before)} -> "
            f"{cap_label(target.cap_w)}"
        )
        tb = bus()
        if tb.enabled:
            tb.count("cap.changes")
            tb.emit(
                "cap.change",
                invocation=n,
                cap_from=cap_label(before),
                cap_to=cap_label(target.cap_w),
            )

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "applied_idx": self._applied_idx,
            "last_change_n": self._last_change_n,
            "log": list(self.log),
        }

    def restore(self, blob: dict) -> None:
        self._applied_idx = int(blob["applied_idx"])
        last = blob["last_change_n"]
        self._last_change_n = None if last is None else int(last)
        self.log = [str(entry) for entry in blob["log"]]
