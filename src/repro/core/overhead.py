"""ARCS overhead accounting (paper Section III-C).

Three overhead classes:

* **Configuration changing** - time in ``omp_set_num_threads`` /
  ``omp_set_schedule`` calls (~0.8 ms per change on Crill), present in
  Online and Offline;
* **APEX instrumentation** - per-event measurement cost, present in
  both;
* **Search** - extra time spent executing regions with sub-optimal
  candidate configurations before convergence, Online only ("We
  observed this overhead to reach as high as 10% of the total
  execution time").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harmony.session import TuningSession


@dataclass(frozen=True)
class OverheadReport:
    """Aggregated overheads of one ARCS-driven application run."""

    config_change_s: float
    config_change_calls: int
    instrumentation_s: float
    search_s: float

    @property
    def total_s(self) -> float:
        return self.config_change_s + self.instrumentation_s + self.search_s

    def fraction_of(self, app_time_s: float) -> float:
        if app_time_s <= 0:
            return 0.0
        return self.total_s / app_time_s


def search_overhead_s(sessions: dict[str, TuningSession]) -> float:
    """Estimate the search overhead across tuning sessions.

    For each region: the time spent measuring candidates minus what the
    same number of executions would have cost at the best configuration
    found.  Sessions that never converged contribute their full excess.
    """
    total = 0.0
    for session in sessions.values():
        best = session.best_value()
        if best is None or not session.search_values:
            continue
        measured = sum(session.search_values)
        total += max(0.0, measured - best * len(session.search_values))
    return total
