"""Controller checkpoints: serialize a live ARCS run's tuning state.

A :func:`controller_checkpoint` captures everything the ARCS side of a
run accumulates - per-region tuning sessions (as replay logs, see
:meth:`~repro.harmony.session.TuningSession.snapshot`), watchdog pins,
the APEX bridge's timers/profile/fault counters and the overhead
baselines - as plain JSON.  :func:`restore_controller` rebuilds an
identical controller by replaying the session logs against freshly
seeded strategies, so a resumed run continues the search exactly where
the interrupted one stopped.

The machine/runtime side (clock, MSRs, RAPL accounts, noise stream) is
snapshotted separately by the respective components; the experiment
runner composes both halves into one run-checkpoint file.
"""

from __future__ import annotations

from repro.core.controller import ARCS
from repro.core.policy import RegionTuningState
from repro.apex.profile import TimerStats
from repro.apex.timers import Timer
from repro.harmony.session import SessionReplayError
from repro.openmp.types import OMPConfig, ScheduleKind


class CheckpointError(RuntimeError):
    """A checkpoint could not be restored (wrong run, wrong code
    version, or a corrupt/torn file)."""


def _config_to_json(config: OMPConfig | None) -> dict | None:
    if config is None:
        return None
    return {
        "n_threads": config.n_threads,
        "schedule": config.schedule.value,
        "chunk": config.chunk,
    }


def _config_from_json(blob: dict | None) -> OMPConfig | None:
    if blob is None:
        return None
    return OMPConfig(
        n_threads=int(blob["n_threads"]),
        schedule=ScheduleKind(blob["schedule"]),
        chunk=None if blob["chunk"] is None else int(blob["chunk"]),
    )


def controller_checkpoint(arcs: ARCS) -> dict:
    """JSON-ready snapshot of a live controller (policy + bridge)."""
    policy = arcs.policy
    regions = {}
    for key, state in policy.regions.items():
        regions[key] = {
            "session": (
                None
                if state.session is None
                else state.session.snapshot()
            ),
            "session_start": (
                None
                if state.session_start is None
                else list(state.session_start)
            ),
            "applied": _config_to_json(state.applied),
            "applied_freq_ghz": state.applied_freq_ghz,
            "skipped": state.skipped,
            "first_elapsed_s": state.first_elapsed_s,
            "executions": state.executions,
            "degraded": state.degraded,
        }
    bridge = arcs.bridge
    profile = bridge.policy_engine.profile
    return {
        "policy": {
            "pinned": dict(policy._pinned),
            "regions": regions,
        },
        "bridge": {
            "instrumentation_time_s": bridge.instrumentation_time_s,
            "timer_dropouts": bridge.timer_dropouts,
            "timer_repairs": bridge.timer_repairs,
            "noise_spikes": bridge.noise_spikes,
            "first_by_name": dict(bridge._first_by_name),
            "timers": {
                "running": [
                    [t.name, t.start_s]
                    for t in bridge.timers._running.values()
                ],
                "seen": sorted(bridge.timers.seen()),
                "starts": bridge.timers.total_starts,
            },
            "profile": {
                name: [
                    s.calls, s.total_s, s.min_s_json(), s.max_s, s.last_s
                ]
                for name, s in profile.timers.items()
            },
        },
        "attach": {
            "config_calls": arcs._config_calls_at_attach,
            "config_time": arcs._config_time_at_attach,
        },
    }


def restore_controller(arcs: ARCS, blob: dict) -> None:
    """Rebuild a freshly-attached controller from a checkpoint.

    ``arcs`` must have been constructed with the same arguments (seed,
    strategy, space, ...) as the checkpointed one and already be
    attached to a runtime restored to the checkpointed instant.
    Regions are rebuilt in their recorded order, which
    ``best_configs``/``chosen_configs`` iteration order - and therefore
    byte-identical results - depends on.
    """
    policy = arcs.policy
    pblob = blob["policy"]
    policy._pinned = {
        str(name): str(reason)
        for name, reason in pblob["pinned"].items()
    }
    policy.regions = {}
    for key, rblob in pblob["regions"].items():
        state = RegionTuningState(
            applied=_config_from_json(rblob["applied"]),
            applied_freq_ghz=rblob["applied_freq_ghz"],
            skipped=bool(rblob["skipped"]),
            first_elapsed_s=rblob["first_elapsed_s"],
            executions=int(rblob["executions"]),
            degraded=rblob["degraded"],
        )
        if rblob["session_start"] is not None:
            state.session_start = tuple(
                int(i) for i in rblob["session_start"]
            )
        if rblob["session"] is not None:
            session = policy._new_session(key, start=state.session_start)
            try:
                session.restore(rblob["session"])
            except SessionReplayError as exc:
                raise CheckpointError(
                    f"cannot restore tuning session for {key!r}: {exc}"
                ) from exc
            state.session = session
        policy.regions[key] = state

    bridge = arcs.bridge
    bblob = blob["bridge"]
    bridge.instrumentation_time_s = float(
        bblob["instrumentation_time_s"]
    )
    bridge.timer_dropouts = int(bblob["timer_dropouts"])
    bridge.timer_repairs = int(bblob["timer_repairs"])
    bridge.noise_spikes = int(bblob["noise_spikes"])
    bridge._first_by_name = {
        str(name): bool(first)
        for name, first in bblob["first_by_name"].items()
    }
    tblob = bblob["timers"]
    bridge.timers._running = {
        str(name): Timer(name=str(name), start_s=float(start_s))
        for name, start_s in tblob["running"]
    }
    bridge.timers._seen = {str(name) for name in tblob["seen"]}
    bridge.timers._starts = int(tblob["starts"])
    profile = bridge.policy_engine.profile
    profile.timers = {}
    for name, (calls, total_s, min_s, max_s, last_s) in bblob[
        "profile"
    ].items():
        profile.timers[str(name)] = TimerStats(
            name=str(name),
            calls=int(calls),
            total_s=float(total_s),
            # None marks a never-fired timer (see TimerStats.min_s_json)
            min_s=float("inf") if min_s is None else float(min_s),
            max_s=float(max_s),
            last_s=float(last_s),
        )

    arcs._config_calls_at_attach = int(blob["attach"]["config_calls"])
    arcs._config_time_at_attach = float(blob["attach"]["config_time"])
