"""The ARCS history file.

"When the program completes, the policy saves the best parameters
found during the search.  When the same program is run again in the
same configuration in the future, the saved values can be used instead
of repeating the search process."  (Section III-B)

Stored as JSON keyed by an experiment key (application | machine |
power cap | workload), mapping region names to their best configuration
and its measured objective.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.openmp.types import OMPConfig, ScheduleKind


def _config_to_json(config: OMPConfig, value: float | None) -> dict:
    return {
        "n_threads": config.n_threads,
        "schedule": config.schedule.value,
        "chunk": config.chunk,
        "value": value,
    }


def _config_from_json(blob: dict) -> tuple[OMPConfig, float | None]:
    config = OMPConfig(
        n_threads=int(blob["n_threads"]),
        schedule=ScheduleKind(blob["schedule"]),
        chunk=None if blob["chunk"] is None else int(blob["chunk"]),
    )
    value = blob.get("value")
    return config, None if value is None else float(value)


class HistoryStore:
    """Best-configuration persistence, in memory or on disk.

    Pass ``path=None`` for a purely in-memory store (used by the
    experiment harness, which holds tuning and measured runs in one
    process); pass a path to persist across processes.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = None if path is None else Path(path)
        self._data: dict[str, dict[str, dict]] = {}
        if self.path is not None and self.path.exists():
            self._data = json.loads(self.path.read_text())

    # ------------------------------------------------------------------
    def save(
        self,
        key: str,
        configs: dict[str, OMPConfig],
        values: dict[str, float] | None = None,
    ) -> None:
        """Record best configs for experiment ``key`` and persist."""
        values = values or {}
        self._data[key] = {
            region: _config_to_json(cfg, values.get(region))
            for region, cfg in configs.items()
        }
        self._persist()

    def load(self, key: str) -> dict[str, OMPConfig]:
        """Best configs per region for ``key`` (KeyError if absent)."""
        try:
            blob = self._data[key]
        except KeyError:
            raise KeyError(f"no saved history for {key!r}") from None
        return {
            region: _config_from_json(entry)[0]
            for region, entry in blob.items()
        }

    def load_values(self, key: str) -> dict[str, float | None]:
        blob = self._data.get(key, {})
        return {
            region: _config_from_json(entry)[1]
            for region, entry in blob.items()
        }

    def has(self, key: str) -> bool:
        return key in self._data

    def keys(self) -> list[str]:
        return sorted(self._data)

    def _persist(self) -> None:
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text(json.dumps(self._data, indent=2))


def experiment_key(
    app: str, machine: str, cap_w: float | None, workload: str = ""
) -> str:
    """Canonical history key for one (app, machine, cap, workload)."""
    cap = "tdp" if cap_w is None else f"{cap_w:g}W"
    return f"{app}|{machine}|{cap}|{workload}"
