"""The ARCS history file.

"When the program completes, the policy saves the best parameters
found during the search.  When the same program is run again in the
same configuration in the future, the saved values can be used instead
of repeating the search process."  (Section III-B)

Stored as JSON keyed by an experiment key (application | machine |
power cap | workload), mapping region names to their best configuration
and its measured objective.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.openmp.types import OMPConfig, ScheduleKind
from repro.util.atomicio import atomic_write_text


class HistoryKeyMissing(KeyError):
    """``HistoryStore.load`` was asked for a key the store does not
    hold.  Carries the key, the store's path (``None`` for in-memory
    stores) and the keys that *are* present, so an ARCS-Offline
    measured run pointed at the wrong history file gets an actionable
    message instead of a bare ``KeyError``."""

    def __init__(
        self, key: str, path: Path | None, known: tuple[str, ...]
    ) -> None:
        self.key = key
        self.path = path
        self.known = known
        where = "in-memory history" if path is None else f"history {path}"
        saved = ", ".join(repr(k) for k in known) if known else "none"
        super().__init__(
            f"no saved history for {key!r} in {where} "
            f"(saved keys: {saved}); run the tuning phase first"
        )

    def __str__(self) -> str:  # KeyError quotes its arg; keep prose
        return self.args[0]


class CorruptHistoryError(RuntimeError):
    """A history file on disk exists but does not parse as a history.

    Raised on load instead of a raw :class:`json.JSONDecodeError` so
    the message names the offending path (a truncated file left behind
    by a crash used to surface as an inscrutable decode error).
    """

    def __init__(self, path: Path, reason: str) -> None:
        self.path = path
        super().__init__(
            f"corrupt ARCS history file {path}: {reason}; delete or "
            "restore it to proceed"
        )


def _config_to_json(config: OMPConfig, value: float | None) -> dict:
    return {
        "n_threads": config.n_threads,
        "schedule": config.schedule.value,
        "chunk": config.chunk,
        "value": value,
    }


def _config_from_json(blob: dict) -> tuple[OMPConfig, float | None]:
    config = OMPConfig(
        n_threads=int(blob["n_threads"]),
        schedule=ScheduleKind(blob["schedule"]),
        chunk=None if blob["chunk"] is None else int(blob["chunk"]),
    )
    value = blob.get("value")
    return config, None if value is None else float(value)


class HistoryStore:
    """Best-configuration persistence, in memory or on disk.

    Pass ``path=None`` for a purely in-memory store (used by the
    experiment harness, which holds tuning and measured runs in one
    process); pass a path to persist across processes.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = None if path is None else Path(path)
        self._data: dict[str, dict[str, dict]] = {}
        if self.path is not None and self.path.exists():
            try:
                data = json.loads(self.path.read_text())
            except json.JSONDecodeError as exc:
                raise CorruptHistoryError(self.path, str(exc)) from exc
            if not isinstance(data, dict):
                raise CorruptHistoryError(
                    self.path,
                    f"expected a JSON object, got {type(data).__name__}",
                )
            self._data = data

    # ------------------------------------------------------------------
    def save(
        self,
        key: str,
        configs: dict[str, OMPConfig],
        values: dict[str, float] | None = None,
    ) -> None:
        """Record best configs for experiment ``key`` and persist."""
        values = values or {}
        self._data[key] = {
            region: _config_to_json(cfg, values.get(region))
            for region, cfg in configs.items()
        }
        self._persist()

    def load(self, key: str) -> dict[str, OMPConfig]:
        """Best configs per region for ``key``
        (:class:`HistoryKeyMissing` if absent)."""
        try:
            blob = self._data[key]
        except KeyError:
            raise HistoryKeyMissing(
                key, self.path, tuple(self.keys())
            ) from None
        return {
            region: _config_from_json(entry)[0]
            for region, entry in blob.items()
        }

    def load_values(self, key: str) -> dict[str, float | None]:
        blob = self._data.get(key, {})
        return {
            region: _config_from_json(entry)[1]
            for region, entry in blob.items()
        }

    def has(self, key: str) -> bool:
        return key in self._data

    def keys(self) -> list[str]:
        return sorted(self._data)

    def _persist(self) -> None:
        """Write atomically (temp file + ``os.replace``) so a crash —
        or a parallel worker dying mid-write — never leaves a
        half-written history behind."""
        if self.path is None:
            return
        atomic_write_text(self.path, json.dumps(self._data, indent=2))


def experiment_key(
    app: str, machine: str, cap_w: float | None, workload: str = ""
) -> str:
    """Canonical history key for one (app, machine, cap, workload)."""
    cap = "tdp" if cap_w is None else f"{cap_w:g}W"
    return f"{app}|{machine}|{cap}|{workload}"
