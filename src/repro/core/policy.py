"""The ARCS policy - the heart of the framework.

"Using the policy engine, we designed a policy to tune OpenMP thread
count, schedule, and chunk size based upon the reduced search space
... At program initialization, the policy registers itself with the
APEX policy engine, and receives callbacks whenever an APEX timer is
started or stopped. ... When a timer is started for a parallel region
which has not been previously encountered, the policy starts an Active
Harmony tuning session for that parallel region.  When a timer is
stopped, the policy reports the time to complete the parallel region.
When a timer is started for a parallel region which has been
previously encountered, the policy sets the number of threads,
schedule, and chunk size to the next value requested by the tuning
session, or, if tuning has converged, to the converged values."
(Section III-B)

Modes:

* *search* (default): per-region tuning sessions with a pluggable
  Harmony strategy (``"nelder-mead"`` for ARCS-Online, ``"exhaustive"``
  for the ARCS-Offline tuning run);
* *replay*: apply configurations from a history file without
  searching (the ARCS-Offline measured run);
* *selective* (the paper's future-work extension): regions whose
  per-call time is below a threshold are never tuned, avoiding the
  Section V-C overhead collapse on tiny LULESH regions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.apex.policy import Policy, TimerEventContext
from repro.core.config import (
    config_from_point,
    default_start_point,
    search_space_for,
)
from repro.core.overhead import search_overhead_s
from repro.harmony.engine import make_strategy
from repro.harmony.session import MeasurementGuard, TuningSession
from repro.harmony.space import SearchSpace
from repro.openmp.batch import batching_enabled
from repro.openmp.runtime import OpenMPRuntime
from repro.openmp.types import OMPConfig, default_config
from repro.telemetry.bus import bus
from repro.util.rng import derive_seed


#: objective functions available for tuning sessions.  The paper tunes
#: for time; ``energy`` and ``edp`` (energy-delay product) are natural
#: extensions once the DVFS dimension exists.
OBJECTIVES = ("time", "energy", "edp")

#: per-source apply-counter names, precomputed - _apply runs once per
#: region invocation and the f-string shows up in the telemetry
#: overhead budget.
_APPLY_COUNTERS = {
    source: f"policy.applies.{source}"
    for source in ("search", "converged", "replay", "pinned", "degraded")
}


class MissingRegionConfigError(KeyError):
    """Replay mode hit a region with no saved configuration.

    A replayed run silently executing unknown regions with whatever
    configuration happens to be current defeats the point of
    ARCS-Offline's measured run; by default the policy now fails
    loudly instead (opt out with ``strict_replay=False``)."""

    def __init__(self, region: str, known: tuple[str, ...]) -> None:
        self.region = region
        self.known = known
        super().__init__(
            f"replay history has no configuration for region "
            f"{region!r}; saved regions: {list(known) or 'none'}"
        )

    def __str__(self) -> str:  # KeyError quotes its arg; keep prose
        return self.args[0]


@dataclass
class RegionTuningState:
    """Bookkeeping the policy keeps per OpenMP region."""

    session: TuningSession | None = None
    applied: OMPConfig | None = None
    applied_freq_ghz: float | None = None
    skipped: bool = False          # selective mode opted out
    first_elapsed_s: float | None = None
    executions: int = 0
    #: why tuning gave up on this region (``None`` = healthy); when
    #: set, the region runs the default configuration from then on.
    degraded: str | None = None
    #: the resolved start point the session was created with (the warm
    #: start, or the policy default).  Recorded so a checkpoint restore
    #: can rebuild the session identically without re-running the
    #: warm-start lookup against a different regions dict.
    session_start: tuple[int, ...] | None = None
    #: restart count at the last batched-prefetch hint; -1 = never
    #: hinted.  Re-hinting happens once per strategy instance (session
    #: start and each divergence restart), when the strategy's preview
    #: is worth a vectorized prefetch.  Not checkpointed - a restored
    #: region simply re-hints on its next execution.
    hinted_restarts: int = -1


class ArcsPolicy(Policy):
    """APEX policy implementing ARCS."""

    name = "arcs"

    def __init__(
        self,
        runtime: OpenMPRuntime,
        strategy: str = "nelder-mead",
        space: SearchSpace | None = None,
        max_evals: int = 40,
        replay: dict[str, OMPConfig] | None = None,
        strict_replay: bool = True,
        selective_threshold_s: float | None = None,
        cap_aware: bool = False,
        objective: str = "time",
        seed: int = 0,
        batch: bool | None = None,
        surrogate_orders: (
            dict[str, tuple[tuple[int, ...], ...]] | None
        ) = None,
    ) -> None:
        if objective not in OBJECTIVES:
            raise ValueError(
                f"objective must be one of {OBJECTIVES}, got {objective!r}"
            )
        if objective != "time" and not (
            runtime.node.spec.supports_energy_counters
        ):
            raise ValueError(
                f"objective {objective!r} needs energy counters, which "
                f"{runtime.node.spec.name} does not expose"
            )
        self.objective = objective
        self.runtime = runtime
        self.strategy_name = strategy
        self.space = space or search_space_for(runtime.node.spec)
        self.max_evals = max_evals
        self.replay = dict(replay) if replay is not None else None
        self.strict_replay = strict_replay
        self.selective_threshold_s = selective_threshold_s
        #: Section II: "the resource manager may ... adjust [nodes']
        #: power level dynamically.  To get the best per node
        #: performance at each power level, the runtime configurations
        #: need to be changed dynamically."  With ``cap_aware`` the
        #: policy keeps one tuning session per (region, power level):
        #: a mid-run cap change opens fresh sessions instead of
        #: trusting configurations tuned for the old level.
        self.cap_aware = cap_aware
        self.seed = seed
        #: batched-prefetch hinting: ``True``/``False`` force it on or
        #: off for this policy; ``None`` follows the process-wide
        #: :func:`repro.openmp.batch.batching_enabled` switch.
        self.batch = batch
        #: model-ranked probe orders per region (base region name, no
        #: cap suffix), consumed by the ``"surrogate"`` strategy; a
        #: region with no order searches with Nelder-Mead instead (the
        #: cold-region half of the fallback contract).
        self.surrogate_orders = (
            dict(surrogate_orders) if surrogate_orders else None
        )
        self.regions: dict[str, RegionTuningState] = {}
        #: regions the watchdog pinned to the default configuration
        #: (region name -> reason).  A pinned region is never tuned
        #: again for the rest of the run, at any power level.
        self._pinned: dict[str, str] = {}
        self._start_point = default_start_point(
            runtime.node.spec, self.space
        )

    def _state_key(self, region_name: str) -> str:
        if not self.cap_aware:
            return region_name
        cap = self.runtime.node.rapl.effective_cap_w(
            0, self.runtime.node.now_s
        )
        cap_label = "tdp" if cap is None else f"{cap:g}W"
        return f"{region_name}@{cap_label}"

    # ------------------------------------------------------------------
    # Policy callbacks
    # ------------------------------------------------------------------
    def on_timer_start(self, context: TimerEventContext) -> None:
        key = self._state_key(context.timer_name)
        state = self.regions.get(key)
        if state is None:
            state = RegionTuningState()
            self.regions[key] = state
        state.executions += 1

        if self.replay is not None:
            config = self.replay.get(context.timer_name)
            if config is None:
                if self.strict_replay:
                    raise MissingRegionConfigError(
                        context.timer_name, tuple(sorted(self.replay))
                    )
                return
            self._apply(state, config, context.timer_name, "replay")
            return

        pin = self._pinned.get(context.timer_name)
        if pin is not None:
            if state.degraded is None:
                state.degraded = pin
            self._apply(
                state, self._default_config(), context.timer_name,
                "pinned",
            )
            return

        if state.skipped:
            return

        if state.session is None:
            if (
                self.selective_threshold_s is not None
                and state.first_elapsed_s is None
            ):
                # selective mode measures the first call with the
                # current config before deciding whether to tune
                return
            start = self._warm_start(context.timer_name)
            state.session_start = (
                start if start is not None else self._start_point
            )
            state.session = self._new_session(key, start=start)

        if state.session.failed:
            # degraded mode: tuning could not produce a trusted
            # configuration, so run the paper's default instead of
            # crashing or trusting a corrupted simplex.
            if state.degraded is None:
                state.degraded = (
                    state.session.failure_reason or "tuning diverged"
                )
            self._apply(
                state, self._default_config(), context.timer_name,
                "degraded",
            )
            return

        if self._batching() and (
            state.hinted_restarts != state.session.stats.restarts
        ):
            state.hinted_restarts = state.session.stats.restarts
            self._hint_probes(context.timer_name, state.session)

        point = state.session.suggest()
        source = "converged" if state.session.converged else "search"
        self._apply(
            state, config_from_point(point), context.timer_name, source
        )
        if "freq_ghz" in point:
            freq = point["freq_ghz"]
            freq = None if freq is None else float(freq)  # type: ignore[arg-type]
            if freq != self.runtime.frequency_limit():
                self.runtime.set_frequency_limit(freq)
            state.applied_freq_ghz = freq

    def on_timer_stop(self, context: TimerEventContext) -> None:
        state = self.regions.get(self._state_key(context.timer_name))
        if state is None or context.elapsed_s is None:
            return
        if state.first_elapsed_s is None:
            state.first_elapsed_s = context.elapsed_s
            if (
                self.selective_threshold_s is not None
                and self.replay is None
                and state.session is None
            ):
                if context.elapsed_s < self.selective_threshold_s:
                    state.skipped = True
                return
        if (
            state.session is not None
            and self.replay is None
            and not state.session.failed
        ):
            value = self._objective_value(context)
            accepted = state.session.report(value)
            tb = bus()
            if tb.enabled:
                tb.count("policy.reports")
                tb.emit(
                    "policy.report",
                    region=context.timer_name,
                    objective=value,
                    accepted=accepted,
                    cap_w=self._cap_w(),
                )

    def _objective_value(self, context: TimerEventContext) -> float:
        if self.objective == "time" or context.record is None:
            return context.elapsed_s or 0.0
        if self.objective == "energy":
            return context.record.energy_j
        # energy-delay product
        return context.record.energy_j * (context.elapsed_s or 0.0)

    # ------------------------------------------------------------------
    def _warm_start(self, region_name: str) -> tuple[int, ...] | None:
        """In cap-aware mode, seed a new power level's search with the
        best configuration found for the same region at the *nearest*
        already-tuned power level - optima shift with the cap but
        rarely jump far, so the closer the donor level, the faster the
        re-tuning search converges.  Ties prefer the lower cap (its
        optimum is the conservative choice under a tighter budget)."""
        if not self.cap_aware:
            return None
        current = self.runtime.node.rapl.effective_cap_w(
            0, self.runtime.node.now_s
        )
        tdp_w = self.runtime.node.spec.tdp_w
        current_w = tdp_w if current is None else current
        candidates: list[tuple[float, float, tuple[int, ...]]] = []
        for key, state in self.regions.items():
            name, sep, cap_label = key.rpartition("@")
            if not sep or name != region_name:
                continue
            if state.session is None:
                continue
            point = state.session.best_point()
            if point is None:
                continue
            cap_w = (
                tdp_w if cap_label == "tdp" else float(cap_label[:-1])
            )
            candidates.append(
                (abs(cap_w - current_w), cap_w, self.space.encode(point))
            )
        if not candidates:
            return None
        candidates.sort(key=lambda c: (c[0], c[1]))
        return candidates[0][2]

    def pin_region(self, region_name: str, reason: str) -> None:
        """Permanently pin ``region_name`` to the default configuration
        (the watchdog's second escalation rung).  Applies across every
        power level, including levels not yet encountered."""
        self._pinned[region_name] = reason
        for key, state in self.regions.items():
            if key.split("@")[0] != region_name:
                continue
            if state.degraded is None:
                state.degraded = reason

    def _default_config(self) -> OMPConfig:
        return default_config(self.runtime.node.spec.total_hw_threads)

    def _batching(self) -> bool:
        if self.batch is not None:
            return self.batch
        return batching_enabled()

    def _hint_probes(
        self, region_name: str, session: TuningSession
    ) -> None:
        """Pass the session's probe preview to the runtime as a
        batched-prefetch hint.  Happens once per strategy instance -
        the preview covers the configs the strategy will definitely ask
        for up front (the whole exhaustive/random plan, a simplex's
        initial vertices); later asks depend on measurements and run
        through the scalar path unchanged."""
        preview = session.probe_preview()
        if not preview:
            return
        configs: list[OMPConfig] = []
        seen: set[OMPConfig] = set()
        for indices in preview:
            config = config_from_point(self.space.decode(indices))
            if config not in seen:
                seen.add(config)
                configs.append(config)
        self.runtime.hint_probes(region_name, tuple(configs))

    def _session_strategy(
        self, region_name: str
    ) -> tuple[str, tuple[tuple[int, ...], ...] | None]:
        """Resolve the strategy (and probe order) for one region's
        session.  Only the ``"surrogate"`` strategy is region-
        dependent: a region the model produced no ranking for searches
        with Nelder-Mead instead - the per-region half of the fallback
        contract (the whole-run half lives in the runner)."""
        if self.strategy_name != "surrogate":
            return self.strategy_name, None
        orders = self.surrogate_orders or {}
        order = orders.get(region_name)
        if order is None:
            # cap-aware state keys carry an ``@<cap>`` suffix; orders
            # are keyed by the bare region name.
            base, sep, _ = region_name.rpartition("@")
            if sep:
                order = orders.get(base)
        if order is None:
            return "nelder-mead", None
        return "surrogate", order

    def _new_session(
        self, region_name: str, start: tuple[int, ...] | None = None
    ) -> TuningSession:
        start_point = start if start is not None else self._start_point
        strategy_name, order = self._session_strategy(region_name)
        strategy = make_strategy(
            strategy_name,
            self.space,
            max_evals=self.max_evals,
            seed=derive_seed(self.seed, "arcs-session", region_name),
            start=start_point,
            order=order,
        )
        restart_ids = itertools.count(1)

        def restarted_strategy():
            # a fresh simplex for divergence recovery, seeded on a
            # stream distinct from the original (and from previous
            # restarts) so a restart never replays the diverged path.
            return make_strategy(
                strategy_name,
                self.space,
                max_evals=self.max_evals,
                seed=derive_seed(
                    self.seed,
                    "arcs-session",
                    region_name,
                    "restart",
                    next(restart_ids),
                ),
                start=start_point,
                order=order,
            )

        return TuningSession(
            self.space,
            strategy,
            guard=MeasurementGuard(),
            strategy_factory=restarted_strategy,
            name=region_name,
        )

    def _cap_w(self) -> float | None:
        return self.runtime.node.rapl.effective_cap_w(
            0, self.runtime.node.now_s
        )

    def _apply(
        self,
        state: RegionTuningState,
        config: OMPConfig,
        region: str | None = None,
        source: str = "search",
    ) -> None:
        """Drive the runtime to ``config``; only touches the runtime
        routines whose value actually changes (each call costs real
        configuration-changing overhead)."""
        current = self.runtime.current_config()
        if config.n_threads != current.n_threads:
            self.runtime.omp_set_num_threads(config.n_threads)
        if (config.schedule, config.chunk) != (
            current.schedule,
            current.chunk,
        ):
            self.runtime.omp_set_schedule(config.schedule, config.chunk)
        state.applied = config
        tb = bus()
        if tb.enabled:
            tb.count("policy.applies")
            tb.count(_APPLY_COUNTERS.get(source)
                     or f"policy.applies.{source}")
            tb.emit(
                "policy.apply",
                region=region or "?",
                config=config.label(),
                source=source,
                cap_w=self._cap_w(),
            )

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def sessions(self) -> dict[str, TuningSession]:
        return {
            name: state.session
            for name, state in self.regions.items()
            if state.session is not None
        }

    def all_converged(self) -> bool:
        """True when every tuned region's session has converged (regions
        skipped by selective mode, replayed regions and failed sessions
        count as done - a failed session will never converge)."""
        sessions = self.sessions()
        if self.replay is not None:
            return True
        if not sessions:
            return False
        return all(s.converged or s.failed for s in sessions.values())

    def degradations(self) -> dict[str, str]:
        """Regions that fell back to the default configuration, with
        the reason tuning gave up on each."""
        return {
            name: state.degraded
            for name, state in sorted(self.regions.items())
            if state.degraded is not None
        }

    def best_configs(self) -> dict[str, OMPConfig]:
        """Best configuration found per region (search modes), or the
        replayed mapping.  Degraded regions report the default
        configuration - the one actually applied - rather than a best
        point from a corrupted search."""
        if self.replay is not None:
            return dict(self.replay)
        configs = {}
        for name, session in self.sessions().items():
            if session.failed:
                configs[name] = self._default_config()
                continue
            point = session.best_point()
            if point is not None:
                configs[name] = config_from_point(point)
        return configs

    def best_points(self) -> dict[str, dict[str, object]]:
        """Full best search-space points (including the ``freq_ghz``
        dimension when tuning with DVFS)."""
        points = {}
        for name, session in self.sessions().items():
            point = session.best_point()
            if point is not None:
                points[name] = point
        return points

    def best_values(self) -> dict[str, float]:
        values = {}
        for name, session in self.sessions().items():
            value = session.best_value()
            if value is not None:
                values[name] = value
        return values

    def search_overhead_s(self) -> float:
        return search_overhead_s(self.sessions())
