"""W3C-traceparent-style trace context over the telemetry bus.

A :class:`TraceContext` is an immutable (trace_id, span_id, parent_id)
triple.  One *root* context is derived per entrypoint (CLI session,
daemon process, sweep worker) from its run identity, and
:func:`traced_span` derives child contexts as control flows through
the layers — including across process boundaries, where the context
rides as a ``00-<trace_id>-<span_id>-01`` traceparent string in wire
frames (:mod:`repro.service`), :class:`~repro.experiments.parallel.SweepTask`
fields, and journal records.

Determinism contract
--------------------
Ids never come from randomness or wall-clock.  A root id is the sha256
of the canonical JSON of the entrypoint's identity attrs (run_id, seed,
...); a child span id is the sha256 of ``trace_id:parent_span_id:n``
where ``n`` is the parent bus's per-process child counter.  Two runs at
the same seed therefore produce byte-identical trace ids, which is what
lets the propagation tests pin exact linkage.

Record conventions
------------------
* A span opened by :func:`traced_span` carries a **3-key** trace dict
  ``{"trace_id", "span_id", "parent_id"}`` — it is a *node* in the tree.
* Every other record emitted while a context is ambient is stamped by
  the bus with a **2-key** dict ``{"trace_id", "span_id"}`` — it
  *belongs to* that span but is not itself a tree node.
"""

from __future__ import annotations

import hashlib
import json
import re
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.telemetry.bus import bus

_TRACEPARENT_RE = re.compile(
    r"^00-([0-9a-f]{32})-([0-9a-f]{16})-[0-9a-f]{2}$"
)


@dataclass(frozen=True)
class TraceContext:
    """One node identity in a cross-process trace tree."""

    trace_id: str  # 32 lowercase hex chars, constant across the tree
    span_id: str  # 16 lowercase hex chars, unique per node
    parent_id: str | None = None  # span_id of the parent node, if known

    def to_traceparent(self) -> str:
        """Serialize for a wire frame / task field (W3C shape)."""
        return f"00-{self.trace_id}-{self.span_id}-01"

    @staticmethod
    def from_traceparent(value: object) -> "TraceContext | None":
        """Parse a traceparent string; ``None`` on anything malformed.

        The parent_id of the resulting context is unknown (the string
        only carries the sender's own span id), matching W3C semantics.
        """
        if not isinstance(value, str):
            return None
        m = _TRACEPARENT_RE.match(value)
        if m is None:
            return None
        return TraceContext(trace_id=m.group(1), span_id=m.group(2))


def _digest(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def root_context(**identity: object) -> TraceContext:
    """Derive the deterministic root context for an entrypoint.

    ``identity`` should be the same attrs stamped into the run's meta
    record (run_id, seed, app...), so the trace id is stable across
    reruns at the same seed and recoverable from the meta record.
    """
    canonical = json.dumps(identity, sort_keys=True, default=str)
    return TraceContext(
        trace_id=_digest("trace:" + canonical)[:32],
        span_id=_digest("span:" + canonical)[:16],
    )


def child_context(tb, parent: TraceContext) -> TraceContext:
    """Derive the next child of ``parent`` on bus ``tb``.

    The per-bus counter makes sibling ids distinct; including the
    parent span id makes ids distinct across worker processes whose
    counters both start at zero.
    """
    n = tb.next_trace_index()
    span_id = _digest(f"{parent.trace_id}:{parent.span_id}:{n}")[:16]
    return TraceContext(
        trace_id=parent.trace_id,
        span_id=span_id,
        parent_id=parent.span_id,
    )


@contextmanager
def traced_span(name: str, **attrs: object) -> Iterator[dict]:
    """A bus span that is also a trace-tree node.

    Pushes a child of the ambient context for the duration of the
    body (so nested records are stamped as belonging to it), then
    writes the span record with the full 3-key trace dict.  On a
    disabled bus this yields a throwaway dict and records nothing;
    on an enabled bus with no ambient context it degrades to a plain
    :meth:`~repro.telemetry.bus.TelemetryBus.span`.
    """
    tb = bus()
    if not tb.enabled:
        yield {}
        return
    parent = tb.trace
    if parent is None:
        with tb.span(name, **attrs) as span_attrs:
            yield span_attrs
        return
    ctx = child_context(tb, parent)
    tb.trace = ctx
    span_attrs = dict(attrs)
    begin, seq = tb.span_begin()
    try:
        yield span_attrs
    finally:
        # restore the parent *before* writing the node record: the
        # explicit trace= dict below must win over ambient stamping
        tb.trace = parent
        tb.span_finish(
            name,
            begin,
            seq,
            trace={
                "trace_id": ctx.trace_id,
                "span_id": ctx.span_id,
                "parent_id": ctx.parent_id,
            },
            **span_attrs,
        )


# ----------------------------------------------------------------------
# tree stitching
# ----------------------------------------------------------------------
def _fmt_dur(dur: object) -> str:
    if not isinstance(dur, (int, float)):
        return ""
    return f" [{dur:.3f}s]"


def build_trace_trees(loaded: list[tuple[str, list[dict]]]) -> dict:
    """Stitch records from many files into per-trace span trees.

    ``loaded`` is ``[(stem, records)]`` as returned by
    :func:`repro.telemetry.sinks.load_telemetry_dir`.  Returns
    ``{trace_id: {"nodes": {span_id: node}, "roots": [span_id]}}``
    where each node is ``{"name", "ts", "seq", "dur", "stem",
    "attrs", "parent_id", "children": [span_id], "events": int}``.

    Span ids referenced as parents but never written as nodes (e.g. a
    worker's handoff parent living in another process that emitted no
    node record, or a CLI session root that only appears in meta) are
    synthesized as placeholder nodes, labeled from the file's meta
    record when one matches.
    """
    trees: dict[str, dict] = {}
    meta_by_span: dict[tuple[str, str], dict] = {}
    for stem, records in loaded:
        for rec in records:
            trace = rec.get("trace")
            if not isinstance(trace, dict):
                continue
            trace_id = trace.get("trace_id")
            span_id = trace.get("span_id")
            if not trace_id or not span_id:
                continue
            tree = trees.setdefault(trace_id, {"nodes": {}, "roots": []})
            nodes = tree["nodes"]
            if rec.get("type") == "span" and "parent_id" in trace:
                node = nodes.setdefault(span_id, _blank_node())
                node.update(
                    name=rec.get("name", "?"),
                    ts=rec.get("ts", 0.0),
                    seq=rec.get("seq", 0),
                    dur=rec.get("dur"),
                    stem=stem,
                    attrs=rec.get("attrs", {}),
                    parent_id=trace.get("parent_id"),
                    synthetic=False,
                )
            else:
                node = nodes.setdefault(span_id, _blank_node())
                node["events"] += 1
                if rec.get("type") == "meta":
                    meta_by_span[(trace_id, span_id)] = {
                        "stem": stem,
                        "attrs": rec.get("attrs", {}),
                    }
    for trace_id, tree in trees.items():
        nodes = tree["nodes"]
        # synthesize parents referenced but never written
        for span_id in list(nodes):
            parent_id = nodes[span_id].get("parent_id")
            if parent_id and parent_id not in nodes:
                nodes[parent_id] = _blank_node()
        for span_id, node in nodes.items():
            if node["synthetic"]:
                meta = meta_by_span.get((trace_id, span_id))
                if meta is not None:
                    node["stem"] = meta["stem"]
                    attrs = meta["attrs"]
                    label = attrs.get("command") or attrs.get("task")
                    node["name"] = (
                        f"session:{label}" if label else "session"
                    )
                    node["attrs"] = dict(attrs)
        for span_id, node in nodes.items():
            parent_id = node.get("parent_id")
            if parent_id and parent_id in nodes:
                nodes[parent_id]["children"].append(span_id)
            else:
                tree["roots"].append(span_id)

        def order(sid: str) -> tuple:
            n = nodes[sid]
            return (n.get("ts", 0.0), n.get("seq", 0), n.get("stem", ""))

        for node in nodes.values():
            node["children"].sort(key=order)
        tree["roots"].sort(key=order)
    return trees


def _blank_node() -> dict:
    return {
        "name": "(external)",
        "ts": 0.0,
        "seq": 0,
        "dur": None,
        "stem": "",
        "attrs": {},
        "parent_id": None,
        "children": [],
        "events": 0,
        "synthetic": True,
    }


def render_trace_tree(loaded: list[tuple[str, list[dict]]]) -> str:
    """Render every stitched trace tree as indented ASCII."""
    trees = build_trace_trees(loaded)
    if not trees:
        return "no trace-correlated records found\n"
    lines: list[str] = []
    for trace_id in sorted(trees):
        tree = trees[trace_id]
        nodes = tree["nodes"]
        lines.append(f"trace {trace_id}")

        def walk(span_id: str, depth: int) -> None:
            node = nodes[span_id]
            indent = "  " * depth
            attrs = node["attrs"]
            attr_bits = " ".join(
                f"{k}={attrs[k]}"
                for k in sorted(attrs)
                if isinstance(attrs[k], (str, int, float, bool))
            )
            extra = f"  {attr_bits}" if attr_bits else ""
            stem = f" <{node['stem']}>" if node["stem"] else ""
            events = (
                f" (+{node['events']} records)" if node["events"] else ""
            )
            lines.append(
                f"{indent}- {node['name']}"
                f"{_fmt_dur(node['dur'])}{stem}{events}{extra}"
            )
            for child in node["children"]:
                walk(child, depth + 1)

        for root in tree["roots"]:
            walk(root, 1)
        lines.append("")
    return "\n".join(lines)
