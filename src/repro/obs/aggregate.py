"""Streaming aggregation of telemetry JSONL into rollups.

:class:`StreamAggregator` consumes ``(stem, record)`` pairs - post-hoc
from :func:`repro.telemetry.sinks.load_telemetry_dir`, or live from a
:class:`TailReader` following files a sweep/fleet/daemon is still
writing - and maintains:

* **counter totals**: flushed ``metric`` counter records plus a derived
  ``events.<name>`` count per point-event name;
* **gauges**: last value wins (merge order is the deterministic
  (ts, file, seq) order);
* **sample series**: any event carrying a numeric ``value`` attr feeds
  a histogram under the event name (e.g. the per-step
  ``fleet.budget_w`` series), and every span feeds ``span.<name>`` with
  its duration - both backed by
  :class:`~repro.telemetry.metrics.HistogramStats`, so p50/p95/p99 come
  from the same nearest-rank estimator the bus flushes;
* **windowed rollups** keyed by ``(window, layer)`` where the layer is
  the record-name prefix before the first dot (``service``, ``fleet``,
  ``run``, ``sweep``, ``config_source``...) - per-layer health for the
  monitor;
* **per-group event tick lists** (``group_by`` attr, e.g. heartbeats
  per node) for gap/staleness rules;
* **top-k slowest spans** and the run's meta attributes.

Everything is a pure fold over records: aggregating a directory twice
yields identical state, and aggregation never writes anything back, so
it cannot perturb results.
"""

from __future__ import annotations

import heapq
from pathlib import Path

from repro.telemetry.metrics import HistogramStats
from repro.telemetry.sinks import telemetry_files

#: default rollup window, in virtual seconds.
DEFAULT_WINDOW_S = 1.0

#: slowest spans retained.
DEFAULT_TOP_K = 10


def record_layer(name: str) -> str:
    """The layer a record name belongs to: its first dotted segment."""
    return name.split(".", 1)[0] if name else "?"


class StreamAggregator:
    """Fold telemetry records into queryable rollup state."""

    def __init__(
        self,
        *,
        window_s: float = DEFAULT_WINDOW_S,
        top_k: int = DEFAULT_TOP_K,
    ) -> None:
        if window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {window_s}")
        self.window_s = window_s
        self.top_k = top_k
        self.records_seen = 0
        #: counter name -> total (metric flushes + events.<name>).
        self.counters: dict[str, float] = {}
        #: gauge name -> last value.
        self.gauges: dict[str, float] = {}
        #: series name -> histogram (value-events and span durations).
        self.samples: dict[str, HistogramStats] = {}
        #: (window index, layer) -> {"events": n, "spans": n,
        #: "dur_sum": s, "names": {name: n}}.
        self.windows: dict[tuple[int, str], dict] = {}
        #: (event name, group value) -> sorted-append list of ticks
        #: [(ts, step)] for gap rules.
        self.group_ticks: dict[tuple[str, str], list[tuple[float, int]]] = {}
        #: merged meta attrs across files (first writer wins per key -
        #: the session meta precedes task metas in merge order).
        self.meta: dict[str, object] = {}
        #: min-heap of (dur, seq#, span summary), size <= top_k.
        self._slowest: list[tuple[float, int, dict]] = []
        self._heap_tiebreak = 0

    # ------------------------------------------------------------------
    def consume(self, stem: str, record: dict) -> None:
        """Fold one record into the rollups."""
        self.records_seen += 1
        rtype = record.get("type")
        name = str(record.get("name", "?"))
        ts = float(record.get("ts", 0.0))
        if rtype == "metric":
            kind = record.get("kind")
            value = record.get("value")
            if kind == "counter" and isinstance(value, (int, float)):
                self.counters[name] = (
                    self.counters.get(name, 0.0) + float(value)
                )
            elif kind == "gauge" and isinstance(value, (int, float)):
                self.gauges[name] = float(value)
            elif kind == "histogram":
                # re-hydrate flushed summaries into the sample series
                # (count/sum/min/max merge exactly; percentiles of the
                # merged view then come from the retained endpoints).
                hist = self._series(name)
                hist.count += int(record.get("count", 0))
                hist.sum += float(record.get("sum", 0.0))
                for key, pick in (("min", min), ("max", max)):
                    value = record.get(key)
                    if not isinstance(value, (int, float)):
                        continue
                    current = getattr(hist, key)
                    setattr(
                        hist,
                        key,
                        value if current is None else pick(current, value),
                    )
                    hist.samples.append(float(value))
            return
        if rtype == "meta":
            for key, value in (record.get("attrs") or {}).items():
                self.meta.setdefault(key, value)
            return
        if rtype not in ("event", "span"):
            return
        attrs = record.get("attrs") or {}
        window = self._window(ts, record_layer(name))
        if rtype == "event":
            window["events"] += 1
            window["names"][name] = window["names"].get(name, 0) + 1
            self.counters[f"events.{name}"] = (
                self.counters.get(f"events.{name}", 0.0) + 1.0
            )
            value = attrs.get("value")
            if isinstance(value, (int, float)) and not isinstance(
                value, bool
            ):
                self._series(name).observe(float(value))
            group = attrs.get("node") or attrs.get("tenant")
            if group is not None:
                step = attrs.get("step")
                self.group_ticks.setdefault(
                    (name, str(group)), []
                ).append(
                    (ts, int(step) if isinstance(step, int) else 0)
                )
            return
        # span
        dur = float(record.get("dur", 0.0))
        window["spans"] += 1
        window["dur_sum"] += dur
        window["names"][name] = window["names"].get(name, 0) + 1
        self._series(f"span.{name}").observe(dur)
        self._note_slow_span(stem, name, ts, dur, attrs)

    def consume_loaded(
        self, loaded: list[tuple[str, list[dict]]]
    ) -> "StreamAggregator":
        """Fold a whole :func:`load_telemetry_dir` result in the same
        deterministic (ts, file, seq) order as
        :func:`~repro.telemetry.timeline.merged_records`."""
        tagged: list[tuple[float, int, int, str, dict]] = []
        for file_index, (stem, records) in enumerate(loaded):
            for record in records:
                tagged.append(
                    (
                        float(record.get("ts", 0.0)),
                        file_index,
                        int(record.get("seq", 0)),
                        stem,
                        record,
                    )
                )
        tagged.sort(key=lambda item: (item[0], item[1], item[2]))
        for _, _, _, stem, record in tagged:
            self.consume(stem, record)
        return self

    # ------------------------------------------------------------------
    def _series(self, name: str) -> HistogramStats:
        hist = self.samples.get(name)
        if hist is None:
            hist = HistogramStats()
            self.samples[name] = hist
        return hist

    def _window(self, ts: float, layer: str) -> dict:
        index = int(ts // self.window_s)
        window = self.windows.get((index, layer))
        if window is None:
            window = {
                "events": 0,
                "spans": 0,
                "dur_sum": 0.0,
                "names": {},
            }
            self.windows[(index, layer)] = window
        return window

    def _note_slow_span(
        self, stem: str, name: str, ts: float, dur: float, attrs: dict
    ) -> None:
        if self.top_k <= 0:
            return
        self._heap_tiebreak += 1
        entry = (
            dur,
            -self._heap_tiebreak,  # later records lose exact ties
            {
                "name": name,
                "stem": stem,
                "ts": ts,
                "dur": dur,
                "attrs": {
                    k: v
                    for k, v in attrs.items()
                    if isinstance(v, (str, int, float, bool))
                },
            },
        )
        if len(self._slowest) < self.top_k:
            heapq.heappush(self._slowest, entry)
        elif entry[0] > self._slowest[0][0]:
            heapq.heapreplace(self._slowest, entry)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def slowest_spans(self) -> list[dict]:
        """Top-k slowest spans, slowest first."""
        return [
            entry[2]
            for entry in sorted(
                self._slowest, key=lambda e: (-e[0], -e[1])
            )
        ]

    def layers(self) -> list[str]:
        return sorted({layer for _, layer in self.windows})

    def layer_summary(self) -> list[dict]:
        """Per-layer totals across all windows (monitor health rows)."""
        rows = []
        for layer in self.layers():
            events = spans = 0
            dur_sum = 0.0
            for (_, wlayer), window in self.windows.items():
                if wlayer != layer:
                    continue
                events += window["events"]
                spans += window["spans"]
                dur_sum += window["dur_sum"]
            span_series = [
                hist
                for name, hist in self.samples.items()
                if name.startswith("span.")
                and record_layer(name[len("span."):]) == layer
            ]
            p95 = None
            merged = HistogramStats()
            for hist in span_series:
                for sample in hist.samples:
                    merged.observe(sample)
            if merged.count:
                p95 = merged.percentile(95)
            rows.append(
                {
                    "layer": layer,
                    "events": events,
                    "spans": spans,
                    "dur_sum": dur_sum,
                    "p95_dur": p95,
                }
            )
        return rows

    def counter_total(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    def max_gap(
        self, event: str, group: str, over: str
    ) -> tuple[str, float] | None:
        """Largest gap between consecutive ticks of ``event`` for one
        ``group`` value; ``over`` is ``"ts"`` or ``"step"``."""
        ticks = self.group_ticks.get((event, group))
        if not ticks or len(ticks) < 2:
            return None
        index = 0 if over == "ts" else 1
        worst = 0.0
        for prev, cur in zip(ticks, ticks[1:]):
            gap = float(cur[index] - prev[index])
            if gap > worst:
                worst = gap
        return group, worst

    def groups(self, event: str) -> list[str]:
        return sorted(
            {group for name, group in self.group_ticks if name == event}
        )


class TailReader:
    """Incrementally re-read growing telemetry JSONL files.

    Tracks a byte offset per file; each :meth:`poll` returns only the
    *complete* new lines since the last poll (a partially written tail
    line is left for the next poll), so a live ``repro monitor
    --follow`` can fold records as the producing process writes them.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self._offsets: dict[Path, int] = {}

    def poll(self) -> list[tuple[str, dict]]:
        import json

        fresh: list[tuple[str, dict]] = []
        for path in telemetry_files(self.directory):
            offset = self._offsets.get(path, 0)
            try:
                with open(path, "rb") as fh:
                    fh.seek(offset)
                    chunk = fh.read()
            except OSError:
                continue
            if not chunk:
                continue
            # only complete lines; the unterminated tail stays pending
            end = chunk.rfind(b"\n")
            if end < 0:
                continue
            self._offsets[path] = offset + end + 1
            for line in chunk[: end + 1].splitlines():
                text = line.decode(errors="replace").strip()
                if not text:
                    continue
                try:
                    blob = json.loads(text)
                except json.JSONDecodeError:
                    continue  # torn mid-file line (crash artifact)
                if isinstance(blob, dict):
                    fresh.append((path.stem, blob))
        return fresh
