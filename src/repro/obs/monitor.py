"""``repro monitor``: terminal dashboard over a telemetry directory.

One-shot mode folds the directory's JSONL through a
:class:`~repro.obs.aggregate.StreamAggregator`, optionally evaluates
an SLO rule file, and renders:

* a per-layer health table (events, spans, total and p95 span time);
* the SLO scoreboard (every rule with ok / ALERT / n/a status);
* active alerts (typed, with observed value vs threshold);
* the top-k slowest spans.

The exit code is the CI contract: 0 when no rule fired, 1 otherwise.

``--follow`` mode re-renders on a cadence from a
:class:`~repro.obs.aggregate.TailReader`, folding only records
appended since the last poll - reading never blocks or perturbs the
writers, so a live sweep/fleet/daemon can be watched mid-run.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.obs.aggregate import (
    DEFAULT_TOP_K,
    DEFAULT_WINDOW_S,
    StreamAggregator,
    TailReader,
)
from repro.obs.slo import RuleOutcome, alerts, evaluate_rules, load_rules
from repro.telemetry.sinks import load_telemetry_dir
from repro.util.tables import format_table


def render_report(
    agg: StreamAggregator,
    outcomes: list[RuleOutcome] | None = None,
    *,
    title: str = "telemetry monitor",
) -> str:
    """The full dashboard as plain text."""
    lines: list[str] = [f"=== {title} ==="]
    lines.append(f"records: {agg.records_seen}")
    if agg.meta:
        keys = ", ".join(
            f"{k}={agg.meta[k]}" for k in sorted(agg.meta)[:6]
        )
        lines.append(f"meta: {keys}")
    lines.append("")
    lines.append(_layer_table(agg))
    if outcomes is not None:
        lines.append("")
        lines.append(_slo_table(outcomes))
        fired = alerts(outcomes)
        lines.append("")
        if fired:
            lines.append(f"ACTIVE ALERTS ({len(fired)}):")
            for alert in fired:
                lines.append(
                    f"  [{alert.severity}] {alert.rule} "
                    f"({alert.kind}): {alert.detail}"
                )
        else:
            lines.append("no active alerts")
    slow = agg.slowest_spans()
    if slow:
        lines.append("")
        lines.append(_slow_table(slow))
    return "\n".join(lines) + "\n"


def _layer_table(agg: StreamAggregator) -> str:
    rows = []
    for row in agg.layer_summary():
        rows.append(
            [
                row["layer"],
                row["events"],
                row["spans"],
                row["dur_sum"],
                "-" if row["p95_dur"] is None else row["p95_dur"],
            ]
        )
    if not rows:
        return "(no event or span records)"
    return format_table(
        ["layer", "events", "spans", "dur_sum_s", "p95_span_s"],
        rows,
        title="layer health",
    )


def _slo_table(outcomes: list[RuleOutcome]) -> str:
    rows = []
    for outcome in outcomes:
        status = (
            "ALERT" if outcome.status == "alert" else outcome.status
        )
        rows.append(
            [outcome.rule, outcome.kind, status, outcome.detail]
        )
    return format_table(
        ["rule", "kind", "status", "detail"], rows, title="SLOs"
    )


def _slow_table(slow: list[dict]) -> str:
    rows = []
    for span in slow:
        attrs = ", ".join(
            f"{k}={v}" for k, v in sorted(span["attrs"].items())
        )
        rows.append(
            [span["name"], span["stem"], span["dur"], attrs]
        )
    return format_table(
        ["span", "file", "dur_s", "attrs"],
        rows,
        title="slowest spans",
    )


def monitor_once(
    directory: str | Path,
    slo_path: str | Path | None = None,
    *,
    window_s: float = DEFAULT_WINDOW_S,
    top_k: int = DEFAULT_TOP_K,
) -> tuple[str, int]:
    """One dashboard render over a finished (or paused) directory.

    Returns ``(text, exit_code)`` - exit 1 iff any SLO rule fired.
    """
    agg = StreamAggregator(window_s=window_s, top_k=top_k)
    agg.consume_loaded(load_telemetry_dir(directory))
    outcomes = None
    if slo_path is not None:
        outcomes = evaluate_rules(agg, load_rules(slo_path))
    text = render_report(
        agg, outcomes, title=f"telemetry monitor: {Path(directory)}"
    )
    fired = alerts(outcomes) if outcomes is not None else []
    return text, 1 if fired else 0


def monitor_follow(
    directory: str | Path,
    slo_path: str | Path | None = None,
    *,
    window_s: float = DEFAULT_WINDOW_S,
    top_k: int = DEFAULT_TOP_K,
    interval_s: float = 1.0,
    max_polls: int | None = None,
    emit=print,
    sleep=time.sleep,
) -> int:
    """Live-follow a telemetry directory, re-rendering each poll.

    Wall-clock pacing is fine here: follow mode is an interactive
    viewer and writes nothing, so it sits outside the determinism
    contract.  ``max_polls``/``emit``/``sleep`` exist for tests (and
    CI) to drive the loop without a terminal; interactive use stops
    with Ctrl-C.  Returns the exit code of the *last* render.
    """
    rules = load_rules(slo_path) if slo_path is not None else None
    reader = TailReader(directory)
    agg = StreamAggregator(window_s=window_s, top_k=top_k)
    polls = 0
    code = 0
    try:
        while True:
            for stem, record in reader.poll():
                agg.consume(stem, record)
            outcomes = (
                evaluate_rules(agg, rules) if rules is not None else None
            )
            emit(
                render_report(
                    agg,
                    outcomes,
                    title=(
                        f"telemetry monitor (live, poll {polls + 1}):"
                        f" {Path(directory)}"
                    ),
                )
            )
            code = (
                1
                if outcomes is not None and alerts(outcomes)
                else 0
            )
            polls += 1
            if max_polls is not None and polls >= max_polls:
                return code
            sleep(interval_s)
    except KeyboardInterrupt:
        return code
