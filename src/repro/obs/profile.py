"""``repro profile``: deterministic virtual-clock sampling profiler.

A classical sampling profiler interrupts on a wall-clock timer - both
nondeterministic and useless over *virtual* time.  Here the "timer" is
arithmetic: every span in the telemetry already carries its virtual
``[ts, ts+dur)`` interval, so sampling at a fixed virtual interval is
a pure function of the records.  Each tick is attributed to the
innermost live span; the sample lands on that span's **ancestry
path** - resolved through trace-context parent links when present
(cross-process: a daemon span parents into its client), falling back
to interval containment within the file when not - so hot paths read
as ``run.strategy > run.tuning > ...`` rather than flat span names.

Same telemetry + same interval -> byte-identical profile.  No clocks,
no signals, no RNG.
"""

from __future__ import annotations

from pathlib import Path

from repro.telemetry.sinks import load_telemetry_dir
from repro.util.tables import format_table

#: default virtual sampling interval, seconds.
DEFAULT_INTERVAL_S = 0.05

#: default number of hot paths reported.
DEFAULT_TOP = 15


def _span_rows(loaded: list[tuple[str, list[dict]]]) -> list[dict]:
    """All span records, flattened with their file stem and trace ids."""
    spans: list[dict] = []
    for stem, records in loaded:
        for record in records:
            if record.get("type") != "span":
                continue
            trace = record.get("trace") or {}
            spans.append(
                {
                    "stem": stem,
                    "name": str(record.get("name", "?")),
                    "ts": float(record.get("ts", 0.0)),
                    "dur": float(record.get("dur", 0.0)),
                    "seq": int(record.get("seq", 0)),
                    "span_id": trace.get("span_id")
                    if "parent_id" in trace
                    else None,
                    "parent_id": trace.get("parent_id"),
                }
            )
    return spans


def _ancestry(span: dict, by_id: dict, stack: list[dict]) -> str:
    """The ``outer > ... > span`` path for one sample.

    Trace parent links win (they cross files/processes); the
    containment ``stack`` (enclosing spans in the same file, outermost
    first) covers spans recorded without trace context.
    """
    names = [span["name"]]
    seen = {id(span)}
    cursor = span
    while True:
        parent = by_id.get(cursor.get("parent_id"))
        if parent is None or id(parent) in seen:
            break
        names.append(parent["name"])
        seen.add(id(parent))
        cursor = parent
    if len(names) == 1 and len(stack) > 1:
        # no trace links: use the file-local nesting at this tick
        names = [s["name"] for s in reversed(stack)]
    return " > ".join(reversed(names))


def profile_dir(
    directory: str | Path,
    *,
    interval_s: float = DEFAULT_INTERVAL_S,
    top: int = DEFAULT_TOP,
) -> list[dict]:
    """Hot ancestry paths, hottest first.

    Each row: ``{"path", "samples", "est_s", "files"}`` where
    ``est_s`` is ``samples * interval_s`` (the usual sampling-profiler
    time estimate, exact here up to interval quantization).
    """
    if interval_s <= 0:
        raise ValueError(f"interval_s must be > 0, got {interval_s}")
    loaded = load_telemetry_dir(directory)
    spans = _span_rows(loaded)
    by_id = {
        s["span_id"]: s for s in spans if s["span_id"] is not None
    }
    buckets: dict[str, dict] = {}
    # Sample each file independently: ticks are global multiples of
    # the interval, so concurrent files stay aligned on the same
    # virtual sampling grid.
    stems = sorted({s["stem"] for s in spans})
    for stem in stems:
        file_spans = sorted(
            (s for s in spans if s["stem"] == stem),
            key=lambda s: (s["ts"], -s["dur"], s["seq"]),
        )
        if not file_spans:
            continue
        lo = min(s["ts"] for s in file_spans)
        hi = max(s["ts"] + s["dur"] for s in file_spans)
        tick = int(lo // interval_s)
        while True:
            t = tick * interval_s
            if t >= hi:
                break
            if t >= lo:
                covering = [
                    s
                    for s in file_spans
                    if s["ts"] <= t < s["ts"] + s["dur"]
                ]
                if covering:
                    # innermost = latest to begin; ties to shortest
                    inner = max(
                        covering,
                        key=lambda s: (s["ts"], -s["dur"], s["seq"]),
                    )
                    path = _ancestry(inner, by_id, covering)
                    bucket = buckets.setdefault(
                        path,
                        {"samples": 0, "files": set()},
                    )
                    bucket["samples"] += 1
                    bucket["files"].add(stem)
            tick += 1
    rows = [
        {
            "path": path,
            "samples": bucket["samples"],
            "est_s": bucket["samples"] * interval_s,
            "files": len(bucket["files"]),
        }
        for path, bucket in buckets.items()
    ]
    rows.sort(key=lambda r: (-r["samples"], r["path"]))
    return rows[:top] if top > 0 else rows


def render_profile(
    directory: str | Path,
    *,
    interval_s: float = DEFAULT_INTERVAL_S,
    top: int = DEFAULT_TOP,
) -> str:
    """The profiler report as plain text."""
    rows = profile_dir(directory, interval_s=interval_s, top=top)
    if not rows:
        return "no spans to profile\n"
    table = format_table(
        ["hot path", "samples", "est_s", "files"],
        [
            [r["path"], r["samples"], r["est_s"], r["files"]]
            for r in rows
        ],
        title=(
            f"sampling profile ({interval_s:g}s virtual interval)"
        ),
    )
    return table + "\n"
