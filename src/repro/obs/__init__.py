"""Observability layer: cross-process trace correlation, streaming
aggregation, SLO evaluation, and live monitoring over the telemetry
bus.

``repro.obs`` is strictly read-side plus context plumbing: it stamps
records with trace identity and consumes telemetry JSONL, but nothing
in the tuning control loop reads anything back from it, so results are
byte-identical with observability on or off.
"""

from repro.obs.aggregate import StreamAggregator, TailReader
from repro.obs.monitor import monitor_follow, monitor_once
from repro.obs.profile import profile_dir, render_profile
from repro.obs.slo import Alert, evaluate_rules, load_rules
from repro.obs.trace import (
    TraceContext,
    child_context,
    render_trace_tree,
    root_context,
    traced_span,
)

__all__ = [
    "Alert",
    "StreamAggregator",
    "TailReader",
    "TraceContext",
    "child_context",
    "evaluate_rules",
    "load_rules",
    "monitor_follow",
    "monitor_once",
    "profile_dir",
    "render_profile",
    "render_trace_tree",
    "root_context",
    "traced_span",
]
