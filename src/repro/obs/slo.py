"""Declarative SLO rules over aggregated telemetry.

A rule file (``examples/slo.json``) is ``{"schema": 1, "rules": [...]}``
where each rule is one of:

``counter_ceiling`` / ``counter_floor``
    ``{"counter": "<glob>", "max"|"min": N}`` - the summed total of
    every matching counter must stay under/over the threshold.
``ratio_ceiling`` / ``ratio_floor``
    ``{"numerator": [globs], "denominator": [globs], "max"|"min": X}``
    - numerator total over denominator total.  A zero denominator
    skips the rule ("n/a": no traffic is not a violation).
``sample_ceiling`` / ``sample_floor``
    ``{"sample": "<series>", "stat": "max|min|mean|last|p50|p95|p99",
    "max"|"min": X}`` over a sample series (value-events or
    ``span.<name>`` durations).  An absent series skips the rule.
``event_gap_ceiling``
    ``{"event": "<name>", "group_by": "node", "over": "step"|"ts",
    "max_gap": N}`` - the largest gap between consecutive occurrences
    per group must stay under the ceiling (heartbeat staleness).

Thresholds may be literals or ``{"max_from_meta": "<key>"}`` /
``{"min_from_meta": "<key>"}``, resolved from the run's meta record -
one rule file serves runs at different global caps.  A rule whose
meta key is absent is skipped, so the same file gates both sweep and
fleet telemetry.

Every violated rule becomes a typed :class:`Alert`; when the ambient
bus is enabled each alert is also emitted as an ``obs.alert``
telemetry event, and the CLI maps any alert to a nonzero exit code.
"""

from __future__ import annotations

import fnmatch
import json
from dataclasses import dataclass
from pathlib import Path

from repro.obs.aggregate import StreamAggregator
from repro.telemetry.bus import bus

SLO_SCHEMA_VERSION = 1

_RULE_KINDS = (
    "counter_ceiling",
    "counter_floor",
    "ratio_ceiling",
    "ratio_floor",
    "sample_ceiling",
    "sample_floor",
    "event_gap_ceiling",
)


class SloConfigError(ValueError):
    """The rule file is malformed."""


@dataclass(frozen=True)
class Alert:
    """One violated SLO rule."""

    rule: str        #: rule name (unique within the file)
    kind: str        #: rule kind (typed: what class of SLO burned)
    severity: str    #: "warning" | "critical"
    value: float     #: observed value
    threshold: float #: the bound it violated
    detail: str      #: human-readable one-liner

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "kind": self.kind,
            "severity": self.severity,
            "value": self.value,
            "threshold": self.threshold,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class RuleOutcome:
    """Evaluation result for one rule (alerts + skipped reporting)."""

    rule: str
    kind: str
    status: str  #: "ok" | "alert" | "n/a"
    detail: str
    alert: Alert | None = None


def load_rules(path: str | Path) -> list[dict]:
    """Parse and validate a rule file."""
    try:
        blob = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SloConfigError(f"cannot read SLO rules {path}: {exc}")
    if (
        not isinstance(blob, dict)
        or blob.get("schema") != SLO_SCHEMA_VERSION
    ):
        raise SloConfigError(
            f"SLO file {path} must be an object with schema="
            f"{SLO_SCHEMA_VERSION}"
        )
    rules = blob.get("rules")
    if not isinstance(rules, list) or not rules:
        raise SloConfigError(f"SLO file {path} holds no rules")
    seen: set[str] = set()
    for rule in rules:
        if not isinstance(rule, dict):
            raise SloConfigError("every rule must be an object")
        name = rule.get("name")
        kind = rule.get("kind")
        if not isinstance(name, str) or not name:
            raise SloConfigError("every rule needs a string 'name'")
        if name in seen:
            raise SloConfigError(f"duplicate rule name {name!r}")
        seen.add(name)
        if kind not in _RULE_KINDS:
            raise SloConfigError(
                f"rule {name!r}: unknown kind {kind!r}; "
                f"known: {_RULE_KINDS}"
            )
    return rules


def _resolve_threshold(
    rule: dict, bound: str, meta: dict
) -> float | None:
    """Literal threshold, or ``<bound>_from_meta`` lookup; ``None``
    when the meta key is absent (rule skipped)."""
    value = rule.get(bound)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    meta_key = rule.get(f"{bound}_from_meta")
    if isinstance(meta_key, str):
        got = meta.get(meta_key)
        if isinstance(got, (int, float)) and not isinstance(got, bool):
            return float(got)
        return None
    raise SloConfigError(
        f"rule {rule.get('name')!r} needs '{bound}' or "
        f"'{bound}_from_meta'"
    )


def _glob_total(agg: StreamAggregator, patterns) -> float:
    if isinstance(patterns, str):
        patterns = [patterns]
    total = 0.0
    for name, value in agg.counters.items():
        if any(fnmatch.fnmatchcase(name, p) for p in patterns):
            total += value
    return total


def _sample_stat(
    agg: StreamAggregator, series: str, stat: str
) -> float | None:
    hist = agg.samples.get(series)
    if hist is None or hist.count == 0:
        return None
    if stat == "max":
        return hist.max
    if stat == "min":
        return hist.min
    if stat == "mean":
        return hist.mean
    if stat == "last":
        return hist.samples[-1] if hist.samples else None
    if stat in ("p50", "p95", "p99"):
        return hist.percentile(float(stat[1:]))
    raise SloConfigError(f"unknown sample stat {stat!r}")


def evaluate_rules(
    agg: StreamAggregator, rules: list[dict]
) -> list[RuleOutcome]:
    """Evaluate every rule against the aggregated state, in file
    order.  Violations are additionally emitted as typed ``obs.alert``
    events when the ambient bus is enabled."""
    outcomes: list[RuleOutcome] = []
    for rule in rules:
        outcomes.append(_evaluate_one(agg, rule))
    tb = bus()
    if tb.enabled:
        for outcome in outcomes:
            if outcome.alert is not None:
                tb.count("obs.alerts")
                tb.emit("obs.alert", **outcome.alert.to_json())
    return outcomes


def alerts(outcomes: list[RuleOutcome]) -> list[Alert]:
    return [o.alert for o in outcomes if o.alert is not None]


def _outcome(
    rule: dict,
    value: float,
    threshold: float,
    violated: bool,
    what: str,
) -> RuleOutcome:
    name = str(rule["name"])
    kind = str(rule["kind"])
    relation = "<=" if kind.endswith("ceiling") else ">="
    detail = f"{what} = {value:g} (required {relation} {threshold:g})"
    if not violated:
        return RuleOutcome(name, kind, "ok", detail)
    severity = str(rule.get("severity", "critical"))
    return RuleOutcome(
        name,
        kind,
        "alert",
        detail,
        Alert(name, kind, severity, value, threshold, detail),
    )


def _na(rule: dict, why: str) -> RuleOutcome:
    return RuleOutcome(
        str(rule["name"]), str(rule["kind"]), "n/a", why
    )


def _evaluate_one(agg: StreamAggregator, rule: dict) -> RuleOutcome:
    kind = rule["kind"]
    if kind in ("counter_ceiling", "counter_floor"):
        bound = "max" if kind == "counter_ceiling" else "min"
        threshold = _resolve_threshold(rule, bound, agg.meta)
        if threshold is None:
            return _na(rule, f"meta key for '{bound}' absent")
        value = _glob_total(agg, rule.get("counter", ""))
        violated = (
            value > threshold
            if kind == "counter_ceiling"
            else value < threshold
        )
        return _outcome(
            rule, value, threshold, violated,
            f"counter {rule.get('counter')}",
        )
    if kind in ("ratio_ceiling", "ratio_floor"):
        bound = "max" if kind == "ratio_ceiling" else "min"
        threshold = _resolve_threshold(rule, bound, agg.meta)
        if threshold is None:
            return _na(rule, f"meta key for '{bound}' absent")
        num = _glob_total(agg, rule.get("numerator", []))
        den = _glob_total(agg, rule.get("denominator", []))
        if den == 0.0:
            return _na(rule, "denominator is zero (no traffic)")
        value = num / den
        violated = (
            value > threshold
            if kind == "ratio_ceiling"
            else value < threshold
        )
        return _outcome(rule, value, threshold, violated, "ratio")
    if kind in ("sample_ceiling", "sample_floor"):
        bound = "max" if kind == "sample_ceiling" else "min"
        threshold = _resolve_threshold(rule, bound, agg.meta)
        if threshold is None:
            return _na(rule, f"meta key for '{bound}' absent")
        series = str(rule.get("sample", ""))
        stat = str(rule.get("stat", "max"))
        value = _sample_stat(agg, series, stat)
        if value is None:
            return _na(rule, f"no samples for series {series!r}")
        violated = (
            value > threshold
            if kind == "sample_ceiling"
            else value < threshold
        )
        return _outcome(
            rule, value, threshold, violated, f"{stat}({series})"
        )
    # event_gap_ceiling
    threshold = _resolve_threshold(rule, "max_gap", agg.meta)
    if threshold is None:
        return _na(rule, "meta key for 'max_gap' absent")
    event = str(rule.get("event", ""))
    over = str(rule.get("over", "step"))
    groups = agg.groups(event)
    if not groups:
        return _na(rule, f"no occurrences of event {event!r}")
    worst_group: str | None = None
    worst = 0.0
    for group in groups:
        gap = agg.max_gap(event, group, over)
        if gap is not None and gap[1] > worst:
            worst_group, worst = gap
    return _outcome(
        rule,
        worst,
        threshold,
        worst > threshold,
        f"max {over}-gap of {event} "
        f"({worst_group if worst_group else 'all groups'})",
    )
