"""APEX: Autonomic Performance Environment for eXascale (re-implemented).

The surface ARCS needs (paper Section III-B): timers started/stopped by
OMPT events, per-timer profiles, real-time introspection of node power
and energy, and a *policy engine* whose registered policies receive
callbacks when timers start and stop (plus periodic policies).  Active
Harmony tuning sessions plug into policies via :mod:`repro.harmony`.
"""

from repro.apex.instrument import ApexOmptBridge
from repro.apex.introspection import Introspection
from repro.apex.policy import Policy, PolicyEngine, TimerEventContext
from repro.apex.profile import ApexProfile, TimerStats
from repro.apex.tau import TauProfiler, TauRegionProfile
from repro.apex.timers import Timer, TimerRegistry

__all__ = [
    "ApexOmptBridge",
    "ApexProfile",
    "Introspection",
    "Policy",
    "PolicyEngine",
    "TauProfiler",
    "TauRegionProfile",
    "Timer",
    "TimerEventContext",
    "TimerRegistry",
    "TimerStats",
]
