"""APEX profiles: accumulated statistics per timer / counter name."""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class TimerStats:
    """Streaming statistics for one timer name."""

    name: str
    calls: int = 0
    total_s: float = 0.0
    min_s: float = float("inf")
    max_s: float = 0.0
    last_s: float = 0.0

    def min_s_json(self) -> float | None:
        """``min_s`` as a strict-JSON value: ``None`` when the timer
        never fired, instead of the in-memory ``inf`` sentinel (which
        ``json.dumps`` writes as the invalid literal ``Infinity``)."""
        return None if not math.isfinite(self.min_s) else self.min_s

    def observe(self, elapsed_s: float) -> None:
        if elapsed_s < 0:
            raise ValueError(f"elapsed_s must be >= 0, got {elapsed_s}")
        self.calls += 1
        self.total_s += elapsed_s
        self.min_s = min(self.min_s, elapsed_s)
        self.max_s = max(self.max_s, elapsed_s)
        self.last_s = elapsed_s

    @property
    def mean_s(self) -> float:
        return self.total_s / self.calls if self.calls else 0.0


@dataclass
class ApexProfile:
    """All timer statistics for one APEX instance - the data the ARCS
    policy queries ("The rules can ... request profile values from any
    measurement collected by APEX")."""

    timers: dict[str, TimerStats] = field(default_factory=dict)

    def observe(self, name: str, elapsed_s: float) -> None:
        stats = self.timers.get(name)
        if stats is None:
            stats = TimerStats(name=name)
            self.timers[name] = stats
        stats.observe(elapsed_s)

    def stats(self, name: str) -> TimerStats:
        try:
            return self.timers[name]
        except KeyError:
            raise KeyError(f"no profile for timer {name!r}") from None

    def names(self) -> list[str]:
        return sorted(self.timers)

    def top_by_total(self, n: int) -> list[TimerStats]:
        """The ``n`` most time-consuming timers (Figure 9's top-5)."""
        return sorted(
            self.timers.values(), key=lambda s: s.total_s, reverse=True
        )[:n]
