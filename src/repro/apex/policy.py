"""The APEX policy engine.

"The most distinguishing component in APEX is the policy engine ...
Policies are rules that decide on outcomes based on the observed state
captured by APEX.  The rules are encoded as callback functions that
are periodic or triggered by events."  (Section III-B)

Policies here receive *timer events* (start/stop, carrying the region
name and — on stop — the full execution record) and optional *periodic*
ticks driven by simulated time.
"""

from __future__ import annotations

from abc import ABC
from dataclasses import dataclass, field

from repro.apex.introspection import Introspection
from repro.apex.profile import ApexProfile
from repro.openmp.records import RegionExecutionRecord
from repro.util.validation import require_positive


@dataclass(frozen=True)
class TimerEventContext:
    """What a policy sees on a timer event."""

    timer_name: str
    now_s: float
    first_encounter: bool
    elapsed_s: float | None = None            # stop events only
    record: RegionExecutionRecord | None = None  # stop events only


class Policy(ABC):
    """Base class for APEX policies."""

    name: str = "policy"

    def on_startup(self, engine: "PolicyEngine") -> None:
        """Called when the policy registers."""

    def on_timer_start(self, context: TimerEventContext) -> None:
        """Triggered when any APEX timer starts."""

    def on_timer_stop(self, context: TimerEventContext) -> None:
        """Triggered when any APEX timer stops."""

    def on_periodic(self, now_s: float) -> None:
        """Periodic trigger (only if registered with a period)."""

    def on_shutdown(self) -> None:
        """Called when the owning APEX instance shuts down."""


@dataclass
class _PeriodicEntry:
    policy: Policy
    period_s: float
    next_due_s: float


@dataclass
class PolicyEngine:
    """Dispatches APEX events to registered policies."""

    introspection: Introspection
    profile: ApexProfile = field(default_factory=ApexProfile)
    _policies: list[Policy] = field(default_factory=list)
    _periodic: list[_PeriodicEntry] = field(default_factory=list)

    def register(self, policy: Policy, period_s: float | None = None) -> None:
        """Register a policy; ``period_s`` additionally subscribes it to
        periodic ticks."""
        if policy in self._policies:
            raise ValueError(f"policy {policy.name!r} already registered")
        self._policies.append(policy)
        if period_s is not None:
            require_positive("period_s", period_s)
            self._periodic.append(
                _PeriodicEntry(
                    policy=policy,
                    period_s=period_s,
                    next_due_s=self.introspection.now_s() + period_s,
                )
            )
        policy.on_startup(self)

    def deregister(self, policy: Policy) -> None:
        try:
            self._policies.remove(policy)
        except ValueError:
            raise ValueError(
                f"policy {policy.name!r} is not registered"
            ) from None
        self._periodic = [
            e for e in self._periodic if e.policy is not policy
        ]

    # ------------------------------------------------------------------
    def timer_started(self, context: TimerEventContext) -> None:
        for policy in list(self._policies):
            policy.on_timer_start(context)
        self._fire_periodic(context.now_s)

    def timer_stopped(self, context: TimerEventContext) -> None:
        if context.elapsed_s is None:
            raise ValueError("stop events must carry elapsed_s")
        self.profile.observe(context.timer_name, context.elapsed_s)
        for policy in list(self._policies):
            policy.on_timer_stop(context)
        self._fire_periodic(context.now_s)

    def shutdown(self) -> None:
        for policy in list(self._policies):
            policy.on_shutdown()

    def _fire_periodic(self, now_s: float) -> None:
        """Periodic policies run whenever simulated time passes their
        deadline (the simulator has no asynchronous threads, so ticks
        piggyback on event dispatch — 'Periodic / Asynchronous' in the
        paper's Figure 2 collapses to this in simulation)."""
        for entry in self._periodic:
            while now_s >= entry.next_due_s:
                entry.policy.on_periodic(entry.next_due_s)
                entry.next_due_s += entry.period_s
