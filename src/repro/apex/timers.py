"""APEX timers.

A timer is identified by a *task identifier* - here the OpenMP region
name, matching how ARCS keys tuning sessions ("When a timer is started
for a parallel region which has not been previously encountered, the
policy starts an Active Harmony tuning session for that parallel
region").  Timers nest per identifier is not needed for parallel
regions (they do not recurse), so one outstanding start per name is
enforced.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Timer:
    """One running timer instance."""

    name: str
    start_s: float
    stopped: bool = False

    def elapsed(self, now_s: float) -> float:
        return now_s - self.start_s


@dataclass
class TimerRegistry:
    """Tracks running timers and whether a name was seen before."""

    _running: dict[str, Timer] = field(default_factory=dict)
    _seen: set[str] = field(default_factory=set)
    _starts: int = 0

    def start(self, name: str, now_s: float) -> tuple[Timer, bool]:
        """Start a timer; returns (timer, first_time_seen)."""
        if name in self._running:
            raise RuntimeError(f"timer {name!r} is already running")
        first = name not in self._seen
        self._seen.add(name)
        self._starts += 1
        timer = Timer(name=name, start_s=now_s)
        self._running[name] = timer
        return timer, first

    def stop(self, name: str, now_s: float) -> float:
        """Stop a timer and return its elapsed seconds."""
        try:
            timer = self._running.pop(name)
        except KeyError:
            raise RuntimeError(f"timer {name!r} is not running") from None
        timer.stopped = True
        return timer.elapsed(now_s)

    def is_running(self, name: str) -> bool:
        return name in self._running

    @property
    def total_starts(self) -> int:
        return self._starts

    def seen(self) -> frozenset[str]:
        return frozenset(self._seen)
