"""The APEX <-> OMPT bridge.

"The OMPT interface starts a timer upon entry to an OpenMP parallel
region and stops that timer upon exit" (Section III-B).  The bridge
registers OMPT callbacks on a runtime, drives the timer registry and
the policy engine, and charges the *APEX instrumentation overhead*
(Section III-C) to the simulated clock for every instrumented event.

The bridge is also a fault boundary: OMPT callbacks on real runtimes
get lost (tool and runtime race during team formation), and timer
reads glitch.  When the node carries a fault injector, the
``ompt.timer_start``/``ompt.timer_stop`` sites drop whole events and
``measure.noise`` spikes the measured elapsed time; the bridge must
survive the resulting asymmetric start/stop sequences - a lost stop
leaves a timer running into the region's next start, a lost start
leaves a stop with nothing to match - without crashing or feeding
garbage intervals to the policy.
"""

from __future__ import annotations

from repro.apex.introspection import Introspection
from repro.faults.plan import DEFAULT_SPIKE_FACTOR, FaultSpec
from repro.apex.policy import PolicyEngine, TimerEventContext
from repro.apex.timers import TimerRegistry
from repro.openmp.ompt import (
    OmptEvent,
    ParallelBeginPayload,
    ParallelEndPayload,
)
from repro.openmp.runtime import OpenMPRuntime
from repro.telemetry.bus import bus

#: time charged per instrumented OMPT event (timer start or stop):
#: measurement glue, map lookups, policy dispatch.
APEX_EVENT_OVERHEAD_S = 12.0e-6


class ApexOmptBridge:
    """Connects one APEX instance to one OpenMP runtime via OMPT."""

    def __init__(self, runtime: OpenMPRuntime) -> None:
        self.runtime = runtime
        self.introspection = Introspection(runtime.node)
        self.timers = TimerRegistry()
        self.policy_engine = PolicyEngine(introspection=self.introspection)
        self._first_by_name: dict[str, bool] = {}
        self._attached = False
        self.instrumentation_time_s = 0.0
        self.faults = runtime.node.faults
        #: OMPT events lost to injected dropouts.
        self.timer_dropouts = 0
        #: asymmetric start/stop sequences repaired (stale running
        #: timer discarded, or a stop with no matching start skipped).
        self.timer_repairs = 0
        #: measured intervals corrupted by an injected noise spike.
        self.noise_spikes = 0

    # ------------------------------------------------------------------
    def attach(self) -> None:
        """Register the OMPT callbacks (idempotent errors on re-attach)."""
        if self._attached:
            raise RuntimeError("APEX bridge is already attached")
        self.runtime.ompt.register(
            OmptEvent.PARALLEL_BEGIN, self._on_parallel_begin
        )
        self.runtime.ompt.register(
            OmptEvent.PARALLEL_END, self._on_parallel_end
        )
        self._attached = True

    def detach(self) -> None:
        if not self._attached:
            raise RuntimeError("APEX bridge is not attached")
        self.runtime.ompt.unregister(
            OmptEvent.PARALLEL_BEGIN, self._on_parallel_begin
        )
        self.runtime.ompt.unregister(
            OmptEvent.PARALLEL_END, self._on_parallel_end
        )
        self._attached = False

    def shutdown(self) -> None:
        """Paper: "When the program completes, the policy saves the best
        parameters found during the search" - policies do that in their
        ``on_shutdown``."""
        self.policy_engine.shutdown()
        if self._attached:
            self.detach()

    # ------------------------------------------------------------------
    def _charge_overhead(self) -> None:
        node = self.runtime.node
        node.advance(APEX_EVENT_OVERHEAD_S)
        self.instrumentation_time_s += APEX_EVENT_OVERHEAD_S
        f = node.frequency.frequency_for_cap(
            node.rapl.effective_cap_w(0, node.now_s), n_active=1
        )
        node.deposit_energy(
            0,
            (node.power.core_dynamic_w(f) + node.power.uncore_w(f))
            * APEX_EVENT_OVERHEAD_S,
        )

    def _draw(self, site: str) -> FaultSpec | None:
        if self.faults is None:
            return None
        return self.faults.draw(site)

    def _on_parallel_begin(self, payload: ParallelBeginPayload) -> None:
        if self._draw("ompt.timer_start") is not None:
            # the begin callback was lost: no timer, no policy event -
            # this execution runs with whatever config is current.
            self.timer_dropouts += 1
            bus().emit(
                "apex.timer_dropout",
                region=payload.region_name,
                edge="start",
            )
            return
        self._charge_overhead()
        name = payload.region_name
        if self.timers.is_running(name):
            # the previous stop event for this region was lost; the
            # stale interval spans an unknown number of executions, so
            # discard it rather than report a garbage measurement.
            self.timers.stop(name, self.runtime.node.now_s)
            self.timer_repairs += 1
            bus().emit(
                "apex.timer_repair", region=name, edge="start"
            )
        _timer, first = self.timers.start(name, self.runtime.node.now_s)
        self._first_by_name[name] = first
        self.policy_engine.timer_started(
            TimerEventContext(
                timer_name=name,
                now_s=self.runtime.node.now_s,
                first_encounter=first,
            )
        )

    def _on_parallel_end(self, payload: ParallelEndPayload) -> None:
        if self._draw("ompt.timer_stop") is not None:
            # the end callback was lost; the running timer is left for
            # the next begin of this region to discard.
            self.timer_dropouts += 1
            bus().emit(
                "apex.timer_dropout",
                region=payload.region_name,
                edge="stop",
            )
            return
        self._charge_overhead()
        name = payload.region_name
        if not self.timers.is_running(name):
            # the matching start was lost: nothing to measure.
            self.timer_repairs += 1
            bus().emit("apex.timer_repair", region=name, edge="stop")
            return
        elapsed = self.timers.stop(name, self.runtime.node.now_s)
        spike = self._draw("measure.noise")
        if spike is not None:
            # a timer glitch: the measurement is corrupted, the actual
            # execution (clock, energy) is not.
            elapsed *= spike.magnitude or DEFAULT_SPIKE_FACTOR
            self.noise_spikes += 1
            bus().emit("apex.noise_spike", region=name)
        self.policy_engine.timer_stopped(
            TimerEventContext(
                timer_name=name,
                now_s=self.runtime.node.now_s,
                first_encounter=self._first_by_name.get(name, False),
                elapsed_s=elapsed,
                record=payload.record,
            )
        )
