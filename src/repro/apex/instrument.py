"""The APEX <-> OMPT bridge.

"The OMPT interface starts a timer upon entry to an OpenMP parallel
region and stops that timer upon exit" (Section III-B).  The bridge
registers OMPT callbacks on a runtime, drives the timer registry and
the policy engine, and charges the *APEX instrumentation overhead*
(Section III-C) to the simulated clock for every instrumented event.
"""

from __future__ import annotations

from repro.apex.introspection import Introspection
from repro.apex.policy import PolicyEngine, TimerEventContext
from repro.apex.timers import TimerRegistry
from repro.openmp.ompt import (
    OmptEvent,
    ParallelBeginPayload,
    ParallelEndPayload,
)
from repro.openmp.runtime import OpenMPRuntime

#: time charged per instrumented OMPT event (timer start or stop):
#: measurement glue, map lookups, policy dispatch.
APEX_EVENT_OVERHEAD_S = 12.0e-6


class ApexOmptBridge:
    """Connects one APEX instance to one OpenMP runtime via OMPT."""

    def __init__(self, runtime: OpenMPRuntime) -> None:
        self.runtime = runtime
        self.introspection = Introspection(runtime.node)
        self.timers = TimerRegistry()
        self.policy_engine = PolicyEngine(introspection=self.introspection)
        self._first_by_name: dict[str, bool] = {}
        self._attached = False
        self.instrumentation_time_s = 0.0

    # ------------------------------------------------------------------
    def attach(self) -> None:
        """Register the OMPT callbacks (idempotent errors on re-attach)."""
        if self._attached:
            raise RuntimeError("APEX bridge is already attached")
        self.runtime.ompt.register(
            OmptEvent.PARALLEL_BEGIN, self._on_parallel_begin
        )
        self.runtime.ompt.register(
            OmptEvent.PARALLEL_END, self._on_parallel_end
        )
        self._attached = True

    def detach(self) -> None:
        if not self._attached:
            raise RuntimeError("APEX bridge is not attached")
        self.runtime.ompt.unregister(
            OmptEvent.PARALLEL_BEGIN, self._on_parallel_begin
        )
        self.runtime.ompt.unregister(
            OmptEvent.PARALLEL_END, self._on_parallel_end
        )
        self._attached = False

    def shutdown(self) -> None:
        """Paper: "When the program completes, the policy saves the best
        parameters found during the search" - policies do that in their
        ``on_shutdown``."""
        self.policy_engine.shutdown()
        if self._attached:
            self.detach()

    # ------------------------------------------------------------------
    def _charge_overhead(self) -> None:
        node = self.runtime.node
        node.advance(APEX_EVENT_OVERHEAD_S)
        self.instrumentation_time_s += APEX_EVENT_OVERHEAD_S
        f = node.frequency.frequency_for_cap(
            node.rapl.effective_cap_w(0, node.now_s), n_active=1
        )
        node.deposit_energy(
            0,
            (node.power.core_dynamic_w(f) + node.power.uncore_w(f))
            * APEX_EVENT_OVERHEAD_S,
        )

    def _on_parallel_begin(self, payload: ParallelBeginPayload) -> None:
        self._charge_overhead()
        _timer, first = self.timers.start(
            payload.region_name, self.runtime.node.now_s
        )
        self._first_by_name[payload.region_name] = first
        self.policy_engine.timer_started(
            TimerEventContext(
                timer_name=payload.region_name,
                now_s=self.runtime.node.now_s,
                first_encounter=first,
            )
        )

    def _on_parallel_end(self, payload: ParallelEndPayload) -> None:
        self._charge_overhead()
        elapsed = self.timers.stop(
            payload.region_name, self.runtime.node.now_s
        )
        self.policy_engine.timer_stopped(
            TimerEventContext(
                timer_name=payload.region_name,
                now_s=self.runtime.node.now_s,
                first_encounter=self._first_by_name.get(
                    payload.region_name, False
                ),
                elapsed_s=elapsed,
                record=payload.record,
            )
        )
