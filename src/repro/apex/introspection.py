"""APEX introspection: real-time access to node power/energy state.

APEX "can provide introspection from timers, counters, node- or
machine-wide resource utilization data, energy consumption, and system
health, all accessed in real-time".  Here introspection reads the
simulated node's RAPL counters and clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.node import SimulatedNode


@dataclass
class Introspection:
    """Read-only view over a node for policies."""

    node: SimulatedNode
    _last_energy_j: float = 0.0
    _last_time_s: float = 0.0

    def now_s(self) -> float:
        return self.node.now_s

    def package_energy_j(self) -> float:
        """Total package energy (raises on machines without counters)."""
        return self.node.read_package_energy_j()

    def current_power_w(self) -> float:
        """Average power since the previous call (RAPL-style sampling);
        0.0 until time advances."""
        energy = self.package_energy_j()
        now = self.node.now_s
        dt = now - self._last_time_s
        de = energy - self._last_energy_j
        self._last_energy_j = energy
        self._last_time_s = now
        if dt <= 0:
            return 0.0
        return de / dt

    def power_caps_w(self) -> tuple[float | None, ...]:
        return tuple(
            self.node.rapl.effective_cap_w(s, self.node.now_s)
            for s in range(self.node.spec.sockets)
        )
