"""A TAU-style OMPT profiler.

Section V-C: "To understand why ARCS is performing poorly with LULESH
on Crill, we did an extensive analysis.  We used TAU for our analysis.
We profiled LULESH running with the default configuration at the
highest power cap.  ...  Through three OMPT events we show how these
regions spent their time" - ``OpenMP_IMPLICIT_TASK`` (inclusive region
time), ``OpenMP_LOOP`` (loop-body time) and ``OpenMP_BARRIER``.

:class:`TauProfiler` consumes exactly those OMPT events from the
runtime and accumulates an inclusive-time profile per region, the data
behind Figure 9.  It is independent of APEX (TAU is a separate tool in
the paper's stack) and can be attached alongside it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.openmp.ompt import DurationPayload, OmptEvent
from repro.openmp.runtime import OpenMPRuntime


@dataclass
class TauRegionProfile:
    """Accumulated OMPT event durations for one region."""

    region_name: str
    calls: int = 0
    implicit_task_s: float = 0.0
    loop_s: float = 0.0
    barrier_s: float = 0.0

    @property
    def time_per_call_s(self) -> float:
        return self.implicit_task_s / self.calls if self.calls else 0.0

    @property
    def barrier_fraction(self) -> float:
        if self.implicit_task_s <= 0:
            return 0.0
        return self.barrier_s / self.implicit_task_s

    @property
    def loop_fraction(self) -> float:
        if self.implicit_task_s <= 0:
            return 0.0
        return self.loop_s / self.implicit_task_s


@dataclass
class TauProfiler:
    """OMPT-event profiler producing per-region inclusive breakdowns."""

    regions: dict[str, TauRegionProfile] = field(default_factory=dict)
    _attached_runtime: OpenMPRuntime | None = None

    # ------------------------------------------------------------------
    def attach(self, runtime: OpenMPRuntime) -> None:
        if self._attached_runtime is not None:
            raise RuntimeError("TauProfiler is already attached")
        runtime.ompt.register(
            OmptEvent.IMPLICIT_TASK, self._on_implicit_task
        )
        runtime.ompt.register(OmptEvent.WORK_LOOP, self._on_loop)
        runtime.ompt.register(
            OmptEvent.SYNC_REGION_BARRIER, self._on_barrier
        )
        self._attached_runtime = runtime

    def detach(self) -> None:
        runtime = self._attached_runtime
        if runtime is None:
            raise RuntimeError("TauProfiler is not attached")
        runtime.ompt.unregister(
            OmptEvent.IMPLICIT_TASK, self._on_implicit_task
        )
        runtime.ompt.unregister(OmptEvent.WORK_LOOP, self._on_loop)
        runtime.ompt.unregister(
            OmptEvent.SYNC_REGION_BARRIER, self._on_barrier
        )
        self._attached_runtime = None

    # ------------------------------------------------------------------
    def _bucket(self, name: str) -> TauRegionProfile:
        bucket = self.regions.get(name)
        if bucket is None:
            bucket = TauRegionProfile(region_name=name)
            self.regions[name] = bucket
        return bucket

    def _on_implicit_task(self, payload: DurationPayload) -> None:
        bucket = self._bucket(payload.region_name)
        bucket.calls += 1
        bucket.implicit_task_s += payload.duration_s

    def _on_loop(self, payload: DurationPayload) -> None:
        self._bucket(payload.region_name).loop_s += payload.duration_s

    def _on_barrier(self, payload: DurationPayload) -> None:
        self._bucket(payload.region_name).barrier_s += payload.duration_s

    # ------------------------------------------------------------------
    def top_by_inclusive_time(self, n: int) -> list[TauRegionProfile]:
        """The ``n`` most time-consuming regions (Figure 9's top-5)."""
        return sorted(
            self.regions.values(),
            key=lambda r: r.implicit_task_s,
            reverse=True,
        )[:n]

    def total_profiled_s(self) -> float:
        return sum(r.implicit_task_s for r in self.regions.values())
