"""Application abstraction: ordered parallel-region call sequences.

An :class:`Application` executes a fixed per-timestep sequence of
region invocations against an :class:`~repro.openmp.runtime.
OpenMPRuntime`; :func:`run_application` measures wall time via the
node clock and package energy via RAPL, and accumulates per-region
totals (the Figure 9 breakdown).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.machine.rapl import RaplReadError
from repro.openmp.records import RegionExecutionRecord, RegionTotals
from repro.openmp.region import RegionProfile
from repro.openmp.runtime import OpenMPRuntime
from repro.util.retry import RetryPolicy
from repro.util.validation import require_positive


@dataclass(frozen=True)
class RegionCall:
    """``calls`` consecutive invocations of one region per timestep.

    Consecutive bursts matter: ARCS only pays configuration-changing
    overhead at region *boundaries*, so call structure shapes the
    Section V-C overhead story.
    """

    region: RegionProfile
    calls: int = 1

    def __post_init__(self) -> None:
        require_positive("calls", self.calls)


@dataclass(frozen=True)
class Application:
    """A benchmark application."""

    name: str
    workload: str                       # class ("B"/"C") or mesh size
    step_sequence: tuple[RegionCall, ...]
    timesteps: int

    def __post_init__(self) -> None:
        require_positive("timesteps", self.timesteps)
        if not self.step_sequence:
            raise ValueError("step_sequence must be non-empty")
        names = [rc.region.name for rc in self.step_sequence]
        if len(set(names)) != len(names):
            raise ValueError(
                f"duplicate region names in step sequence: {names}"
            )

    @property
    def label(self) -> str:
        return f"{self.name}.{self.workload}"

    def regions(self) -> list[RegionProfile]:
        return [rc.region for rc in self.step_sequence]

    def region_names(self) -> list[str]:
        return [rc.region.name for rc in self.step_sequence]

    def calls_per_step(self) -> int:
        return sum(rc.calls for rc in self.step_sequence)


@dataclass
class _RegionAccumulator:
    calls: int = 0
    implicit_task_s: float = 0.0
    loop_s: float = 0.0
    barrier_s: float = 0.0
    energy_j: float = 0.0
    l1_sum: float = 0.0
    l2_sum: float = 0.0
    l3_sum: float = 0.0

    def add(self, record: RegionExecutionRecord) -> None:
        n = record.config.n_threads
        self.calls += 1
        self.implicit_task_s += record.time_s
        self.loop_s += sum(record.thread_busy_s) / n
        self.barrier_s += record.barrier_wait_total_s / n
        self.energy_j += record.energy_j
        self.l1_sum += record.l1_miss_rate
        self.l2_sum += record.l2_miss_rate
        self.l3_sum += record.l3_miss_rate

    def to_json(self) -> list:
        return [
            self.calls, self.implicit_task_s, self.loop_s,
            self.barrier_s, self.energy_j, self.l1_sum, self.l2_sum,
            self.l3_sum,
        ]

    @classmethod
    def from_json(cls, blob: list) -> "_RegionAccumulator":
        calls, implicit, loop, barrier, energy, l1, l2, l3 = blob
        return cls(
            calls=int(calls),
            implicit_task_s=float(implicit),
            loop_s=float(loop),
            barrier_s=float(barrier),
            energy_j=float(energy),
            l1_sum=float(l1),
            l2_sum=float(l2),
            l3_sum=float(l3),
        )


@dataclass
class RunProgress:
    """Mid-run measurement state for one application run.

    :func:`run_application` threads its accumulation through this
    object so the experiment runner can checkpoint a run after any
    completed region invocation and later resume it: a restored
    ``RunProgress`` makes the loop skip the ``invocations`` already
    measured and carry on with the same totals, start time and start
    energy reading.
    """

    invocations: int = 0
    t0: float = 0.0
    e0: float | None = None
    notes: list[str] = field(default_factory=list)
    acc: dict[str, _RegionAccumulator] = field(default_factory=dict)
    started: bool = False

    def snapshot(self) -> dict:
        return {
            "invocations": self.invocations,
            "t0": self.t0,
            "e0": self.e0,
            "notes": list(self.notes),
            "acc": {
                name: a.to_json() for name, a in self.acc.items()
            },
            "started": self.started,
        }

    @classmethod
    def from_snapshot(cls, blob: dict) -> "RunProgress":
        return cls(
            invocations=int(blob["invocations"]),
            t0=float(blob["t0"]),
            e0=None if blob["e0"] is None else float(blob["e0"]),
            notes=[str(n) for n in blob["notes"]],
            acc={
                str(name): _RegionAccumulator.from_json(a)
                for name, a in blob["acc"].items()
            },
            started=bool(blob["started"]),
        )


@dataclass(frozen=True)
class AppRunResult:
    """Outcome of one application run."""

    app_label: str
    time_s: float
    energy_j: float | None              # None on machines w/o counters
    region_totals: dict[str, RegionTotals]
    region_miss_rates: dict[str, tuple[float, float, float]]
    total_region_calls: int
    #: measurement degradations hit during this run (persistent RAPL
    #: read failures, wraparound corrections); empty for a clean run.
    degraded: tuple[str, ...] = ()

    def total_barrier_s(self) -> float:
        return sum(t.barrier_s for t in self.region_totals.values())


#: attempts per RAPL energy read before degrading to time-only.
_ENERGY_READ_ATTEMPTS = 3

#: shared bounded-retry schedule (no sleeping - RAPL reads are
#: instantaneous in simulated time).
_ENERGY_READ_RETRY = RetryPolicy(attempts=_ENERGY_READ_ATTEMPTS)


def _read_energy(
    node, notes: list[str], when: str
) -> float | None:
    """One harness-side energy read, retried against transient
    :class:`RaplReadError`; ``None`` (with a note) when reads stay
    broken - the run then reports time only rather than crashing or
    publishing garbage energy."""
    try:
        return _ENERGY_READ_RETRY.run(
            node.read_package_energy_j,
            retry_on=RaplReadError,
            site="energy.read",
        )
    except RaplReadError as last:
        notes.append(
            f"energy read at run {when} failed "
            f"{_ENERGY_READ_ATTEMPTS} times ({last}); "
            "energy not reported"
        )
        return None


def run_application(
    app: Application,
    runtime: OpenMPRuntime,
    *,
    execute: Callable[[RegionProfile], RegionExecutionRecord]
    | None = None,
    observer: Callable[[RunProgress], None] | None = None,
    progress: RunProgress | None = None,
) -> AppRunResult:
    """Execute ``app`` once on ``runtime`` and measure it.

    Wall time is the node-clock delta (so ARCS/APEX overheads charged
    to the clock are included, exactly as a real wall-clock measurement
    would include them); energy is the RAPL package-counter delta.

    ``execute`` overrides how one region invocation runs (the watchdog
    supervisor wraps ``runtime.parallel_for`` here); ``observer`` is
    called after every completed invocation (checkpoint writes, cap
    schedules); ``progress`` resumes a previously checkpointed run -
    invocations it already covers are skipped.  All three default to
    the plain uninstrumented run.
    """
    node = runtime.node
    has_energy = node.spec.supports_energy_counters
    if progress is None:
        progress = RunProgress()
    if execute is None:
        execute = runtime.parallel_for
    if not progress.started:
        progress.started = True
        progress.t0 = node.now_s
        progress.e0 = (
            _read_energy(node, progress.notes, "start")
            if has_energy
            else None
        )

    acc = progress.acc
    idx = 0
    for _step in range(app.timesteps):
        for rc in app.step_sequence:
            for _ in range(rc.calls):
                idx += 1
                if idx <= progress.invocations:
                    continue
                bucket = acc.setdefault(
                    rc.region.name, _RegionAccumulator()
                )
                record = execute(rc.region)
                bucket.add(record)
                progress.invocations = idx
                if observer is not None:
                    observer(progress)

    calls = progress.invocations
    notes = progress.notes
    e0 = progress.e0
    time_s = node.now_s - progress.t0
    energy_j: float | None = None
    if has_energy and e0 is not None:
        e1 = _read_energy(node, notes, "end")
        if e1 is not None:
            if e1 < e0:
                # the counter wrapped (or a read raced a wrap) between
                # the endpoints; correct by whole counter spans.
                notes.append(
                    "energy counter wrapped during run; delta "
                    "corrected by counter span"
                )
                energy_j = node.energy_delta_j(e0, e1)
            else:
                energy_j = e1 - e0
    totals = {
        name: RegionTotals(
            region_name=name,
            calls=a.calls,
            implicit_task_s=a.implicit_task_s,
            loop_s=a.loop_s,
            barrier_s=a.barrier_s,
            energy_j=a.energy_j,
        )
        for name, a in acc.items()
    }
    miss_rates = {
        name: (
            a.l1_sum / a.calls,
            a.l2_sum / a.calls,
            a.l3_sum / a.calls,
        )
        for name, a in acc.items()
        if a.calls
    }
    return AppRunResult(
        app_label=app.label,
        time_s=time_s,
        energy_j=energy_j,
        region_totals=totals,
        region_miss_rates=miss_rates,
        total_region_calls=calls,
        degraded=tuple(notes + runtime.degradations),
    )
