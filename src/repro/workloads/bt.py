"""BT - Block Tridiagonal NPB kernel.

Paper characterization (Section V-B): "BT is an application with good
load balancing and cache behavior. ... Three of these regions
(x_solve, y_solve and z_solve) show very good load balancing and cache
behavior in the default configuration.  Only compute_rhs shows poor
scaling, load balancing, and cache behavior.  ...  compute_rhs is
algorithmically hard to optimize due to its long stride memory access"
- the second-order ``rhsz`` stencil reads the K+/-2, K+/-1 and K planes,
i.e. strides of a whole grid plane.

BT's solvers invert 5x5 blocks per point, so they are much more
compute-dense than SP's scalar sweeps (high ``cpu_ns_per_iter``, small
miss-prone footprint) - this is why ARCS has "a limited opportunity to
improve the performance of this application".
"""

from __future__ import annotations

from repro.machine.cache import MemoryProfile
from repro.openmp.region import ImbalanceSpec, RegionProfile
from repro.workloads.base import Application, RegionCall
from repro.workloads.npb import NPB_TIMESTEPS, geometry


def _region(
    name: str,
    iters: int,
    cpu_ns: float,
    bytes_per_iter: float,
    stride: float,
    footprint: float,
    reuse: float,
    imbalance: ImbalanceSpec,
    window: float | None = None,
) -> RegionProfile:
    return RegionProfile(
        name=name,
        iterations=iters,
        cpu_ns_per_iter=cpu_ns,
        memory=MemoryProfile(
            bytes_per_iter=bytes_per_iter,
            stride_bytes=stride,
            footprint_bytes=footprint,
            reuse_fraction=reuse,
            reuse_window_bytes=window,
        ),
        imbalance=imbalance,
    )


def bt_application(npb_class: str = "B") -> Application:
    """Build BT for class ``"B"`` or ``"C"``."""
    g = geometry(npb_class)
    n = g.interior
    plane5 = 5.0 * g.plane_bytes

    solver_balance = ImbalanceSpec(kind="random", amplitude=0.02)
    rhs_imbalance = ImbalanceSpec(kind="random", amplitude=0.14)

    # 5x5 block solves: heavy arithmetic per point, block-resident data.
    # NPB-OMP-C blocks the solver sweeps over (k, j) tiles, so the
    # parallel trip count is several times the grid extent - this is
    # why BT's solvers scale and balance so well in the paper even at
    # high thread counts.
    solver_iters = n * 5
    solver_kwargs = dict(
        iters=solver_iters,
        cpu_ns=3.2e6 / 5,
        bytes_per_iter=plane5 * 0.1,
        stride=8.0,
        footprint=g.field_mib(3) * 0.35,   # blocked working set, fits L3
        reuse=0.55,
        imbalance=solver_balance,
    )
    major = [
        _region("x_solve", **solver_kwargs),
        _region("y_solve", **solver_kwargs),
        _region("z_solve", **solver_kwargs),
        _region(
            "compute_rhs", n * 3, 1.3e6 / 3, plane5 * 0.4,
            g.plane_bytes,                 # rhsz K +/- 2 stencil stride
            g.field_mib(5) * 1.2, 0.15, rhs_imbalance,
            window=5.0 * plane5,
        ),
    ]
    minor_names = (
        "add", "initialize", "exact_rhs", "lhsinit",
        "copy_faces", "error_norm", "rhs_norm", "adi_prep",
    )
    minor = [
        _region(
            name, n, 0.16e6, plane5 * 0.35, 8.0,
            g.field_mib(2) * 0.5, 0.4,
            ImbalanceSpec(kind="random", amplitude=0.02),
        )
        for name in minor_names
    ]
    return Application(
        name="bt",
        workload=npb_class,
        step_sequence=tuple(RegionCall(region=r) for r in major + minor),
        timesteps=NPB_TIMESTEPS,
    )


def bt_motivation_region(npb_class: str = "B") -> RegionProfile:
    """The Figure 1 motivation kernel: "an OpenMP region from the BT
    benchmark ... belongs to the x_solve function, and has coarse grain
    parallelism".

    The motivation experiment ran the region standalone and exhibits
    larger tuning headroom than BT's in-application x_solve (the
    paper's Section V-B finds the full application's solvers
    well-behaved; the motivating standalone kernel shows up to ~20%
    improvement and cap-dependent optima).  We model it as an x_solve
    variant with more pronounced imbalance and a bigger active
    footprint, as a standalone sweep over fresh data has no warmed
    cache to reuse.
    """
    g = geometry(npb_class)
    return _region(
        "bt_x_solve_motivation",
        g.interior,
        1.6e6,
        5.0 * g.plane_bytes,
        8.0,
        g.field_mib(5),
        0.80,
        ImbalanceSpec(kind="random", amplitude=0.20),
        window=25.0 * g.plane_bytes,
    )
