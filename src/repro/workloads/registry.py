"""Name-based application lookup for harness scripts and examples."""

from __future__ import annotations

from repro.workloads.base import Application
from repro.workloads.bt import bt_application
from repro.workloads.lulesh import lulesh_application
from repro.workloads.sp import sp_application
from repro.workloads.synthetic import synthetic_application


def application_by_name(name: str, workload: str | None = None) -> Application:
    """Build an application by name.

    ``name`` in {"sp", "bt", "lulesh", "synthetic"}; ``workload`` is
    the NPB class ("B"/"C") or LULESH mesh ("45"/"60").
    """
    key = name.lower()
    if key == "sp":
        return sp_application(workload or "B")
    if key == "bt":
        return bt_application(workload or "B")
    if key == "lulesh":
        return lulesh_application(int(workload or 45))
    if key == "synthetic":
        return synthetic_application()
    raise ValueError(
        f"unknown application {name!r}; known: sp, bt, lulesh, synthetic"
    )
