"""Benchmark applications (paper Section IV-C).

The paper evaluates ARCS on NPB **BT** and **SP** (NPB 3.3-OMP-C,
classes B and C with custom time steps) and **LULESH 2.0** (mesh sizes
45 and 60).  Each application is modelled as an ordered per-timestep
sequence of parallel-region invocations whose profiles encode the
paper's characterization:

* **SP** - well load-balanced, *poor* cache behaviour; ~75 % of time
  in ``compute_rhs`` / ``x_solve`` / ``y_solve`` / ``z_solve``;
* **BT** - well balanced *and* cache friendly except ``compute_rhs``
  (long-stride ``rhsz`` stencil);
* **LULESH** - well-balanced large element loops plus many tiny
  regions (``EvalEOSForElems``, ``CalcPressureForElems``) whose
  per-call time is comparable to the ARCS configuration-change
  overhead.
"""

from repro.workloads.base import (
    Application,
    AppRunResult,
    RegionCall,
    run_application,
)
from repro.workloads.bt import bt_application, bt_motivation_region
from repro.workloads.lulesh import lulesh_application
from repro.workloads.registry import application_by_name
from repro.workloads.sp import sp_application
from repro.workloads.synthetic import (
    cache_hostile_region,
    imbalanced_region,
    synthetic_application,
    tiny_region,
)

__all__ = [
    "AppRunResult",
    "Application",
    "RegionCall",
    "application_by_name",
    "bt_application",
    "bt_motivation_region",
    "cache_hostile_region",
    "imbalanced_region",
    "lulesh_application",
    "run_application",
    "sp_application",
    "synthetic_application",
    "tiny_region",
]
