"""Synthetic workload generators for tests and ablation benches."""

from __future__ import annotations

from repro.machine.cache import MemoryProfile
from repro.openmp.region import ImbalanceSpec, RegionProfile
from repro.util.units import MIB
from repro.workloads.base import Application, RegionCall


def imbalanced_region(
    name: str = "synthetic_imbalanced",
    iterations: int = 256,
    amplitude: float = 0.5,
    kind: str = "linear",
) -> RegionProfile:
    """A compute-bound region with controllable load imbalance - the
    canonical case where dynamic/guided beat default static."""
    return RegionProfile(
        name=name,
        iterations=iterations,
        cpu_ns_per_iter=4.0e5,
        memory=MemoryProfile(
            bytes_per_iter=2048.0,
            stride_bytes=8.0,
            footprint_bytes=2 * MIB,
            reuse_fraction=0.6,
        ),
        imbalance=ImbalanceSpec(kind=kind, amplitude=amplitude),
    )


def cache_hostile_region(
    name: str = "synthetic_cache_hostile",
    iterations: int = 256,
    stride_bytes: float = 8192.0,
    footprint_mib: float = 64.0,
) -> RegionProfile:
    """A long-stride, L3-busting region - the canonical case where
    fewer threads / different chunking beat the default."""
    return RegionProfile(
        name=name,
        iterations=iterations,
        cpu_ns_per_iter=2.0e5,
        memory=MemoryProfile(
            bytes_per_iter=256.0e3,
            stride_bytes=stride_bytes,
            footprint_bytes=footprint_mib * MIB,
            reuse_fraction=0.1,
        ),
        imbalance=ImbalanceSpec(kind="random", amplitude=0.03),
    )


def tiny_region(
    name: str = "synthetic_tiny",
    iterations: int = 512,
    cpu_ns_per_iter: float = 1.0e3,
) -> RegionProfile:
    """A region whose per-call time is comparable to the ARCS
    configuration-change overhead (the LULESH EvalEOS situation)."""
    return RegionProfile(
        name=name,
        iterations=iterations,
        cpu_ns_per_iter=cpu_ns_per_iter,
        memory=MemoryProfile(
            bytes_per_iter=64.0,
            stride_bytes=8.0,
            footprint_bytes=1 * MIB,
            reuse_fraction=0.5,
        ),
        imbalance=ImbalanceSpec(kind="random", amplitude=0.3),
    )


def synthetic_application(
    timesteps: int = 30,
    include_tiny: bool = True,
) -> Application:
    """A small mixed application exercising all behaviour classes."""
    calls = [
        RegionCall(region=imbalanced_region()),
        RegionCall(region=cache_hostile_region()),
    ]
    if include_tiny:
        calls.append(RegionCall(region=tiny_region(), calls=16))
    return Application(
        name="synthetic",
        workload="mixed",
        step_sequence=tuple(calls),
        timesteps=timesteps,
    )
