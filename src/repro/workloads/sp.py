"""SP - Scalar Pentadiagonal NPB kernel.

Paper characterization (Sections IV-C, V-A): "SP is an application
which shows a good load balancing behavior and poor cache behavior
with the default configuration.  SP consists of 13 loop based OpenMP
regions.  However, almost 75% of its execution time is spent on four
regions (compute_rhs, x_solve, y_solve and z_solve).  Among them,
compute_rhs has a poor load balancing and cache behavior; x_solve,
y_solve and z_solve have good load balancing but show poor cache
behavior."

The memory profiles encode *why* the cache behaviour is poor: SP's
scalar pentadiagonal sweeps stream five full 3-D fields (footprints
well beyond the 20 MiB shared L3), and the y/z sweeps stride by a row /
a plane respectively.  The per-iteration costs are calibrated so a
class-B region call lands in the tens of milliseconds at the default
configuration, matching the scale of the paper's Figure 1.
"""

from __future__ import annotations

from repro.machine.cache import MemoryProfile
from repro.openmp.region import ImbalanceSpec, RegionProfile
from repro.workloads.base import Application, RegionCall
from repro.workloads.npb import NPB_TIMESTEPS, geometry


def _region(
    name: str,
    iters: int,
    cpu_ns: float,
    bytes_per_iter: float,
    stride: float,
    footprint: float,
    reuse: float,
    imbalance: ImbalanceSpec,
    window: float | None = None,
) -> RegionProfile:
    return RegionProfile(
        name=name,
        iterations=iters,
        cpu_ns_per_iter=cpu_ns,
        memory=MemoryProfile(
            bytes_per_iter=bytes_per_iter,
            stride_bytes=stride,
            footprint_bytes=footprint,
            reuse_fraction=reuse,
            reuse_window_bytes=window,
        ),
        imbalance=imbalance,
    )


def sp_application(npb_class: str = "B") -> Application:
    """Build SP for class ``"B"`` or ``"C"``."""
    g = geometry(npb_class)
    n = g.interior
    # work per interior plane: each sweep touches ~5 variables over a
    # plane; compute_rhs does the heaviest arithmetic.
    plane5 = 5.0 * g.plane_bytes
    fields5 = g.field_mib(5)
    # stencil neighbourhood: ~5 planes of 5 variables re-referenced
    # around the current sweep position
    window5 = 5.0 * plane5

    balanced = ImbalanceSpec(kind="random", amplitude=0.035)
    rhs_imbalance = ImbalanceSpec(kind="random", amplitude=0.22)

    major = [
        _region(
            "compute_rhs", n, 0.90e6, plane5 * 1.4, 8.0,
            fields5 * 1.3, 0.80, rhs_imbalance, window=window5 * 1.4,
        ),
        _region(
            "x_solve", n, 0.55e6, plane5 * 1.3, 8.0,
            fields5, 0.85, balanced, window=window5,
        ),
        _region(
            "y_solve", n, 0.45e6, plane5, g.row_bytes,
            fields5, 0.85, balanced, window=window5,
        ),
        _region(
            "z_solve", n, 0.50e6, plane5, g.plane_bytes,
            fields5, 0.82, balanced, window=window5,
        ),
    ]
    # nine minor regions (txinvr, add, exact_rhs pieces, initialization
    # helpers): lighter, mostly streaming, collectively ~25% of time.
    minor_names = (
        "txinvr", "ninvr", "pinvr", "tzetar", "add",
        "lhsinit_x", "lhsinit_y", "lhsinit_z", "error_norm",
    )
    minor = [
        _region(
            name, n, 0.14e6, plane5 * 0.4, 8.0,
            g.field_mib(2), 0.55,
            ImbalanceSpec(kind="random", amplitude=0.02),
            window=g.plane_bytes * 4,
        )
        for name in minor_names
    ]
    sequence = tuple(
        RegionCall(region=r) for r in (major + minor)
    )
    return Application(
        name="sp",
        workload=npb_class,
        step_sequence=sequence,
        timesteps=NPB_TIMESTEPS,
    )
