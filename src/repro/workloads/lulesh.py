"""LULESH 2.0 - LLNL shock hydrodynamics proxy application.

Paper characterization (Sections IV-C, V-C): "it shows excellent load
balancing and cache behavior"; mesh sizes 45 and 60.  The Figure 9
profile singles out five regions:

* ``EvalEOSForElems`` - the most time-consuming by inclusive time but
  almost all of it in OpenMP_BARRIER; ~0.8 ms per region call;
* ``CalcPressureForElems`` - similar, ~1.4 ms per call;
* ``CalcKinematicsForElems`` / ``CalcMonotonicQGradientsForElems`` -
  large, near-perfectly balanced (0.8% / 0.26% barrier time);
* ``CalcFBHourglassForceForElems`` - large with ~6% barrier time, the
  one region ARCS improves on Crill.

The EOS/pressure regions run over per-material element subsets (hence
the small trip counts and per-call times) and are invoked in bursts
within each timestep, which is exactly what makes the ~0.8 ms
configuration-change overhead catastrophic for ARCS-Online there.
"""

from __future__ import annotations

from repro.machine.cache import MemoryProfile
from repro.openmp.region import ImbalanceSpec, RegionProfile
from repro.util.validation import require_in
from repro.workloads.base import Application, RegionCall

#: mesh -> edge elements; the paper used 45 and 60.
LULESH_MESHES = (45, 60)

LULESH_TIMESTEPS = 40

WORD = 8


def _region(
    name: str,
    iters: int,
    cpu_ns: float,
    bytes_per_iter: float,
    footprint: float,
    reuse: float,
    imbalance: ImbalanceSpec,
    stride: float = 8.0,
    serial_ns: float = 0.0,
) -> RegionProfile:
    return RegionProfile(
        name=name,
        iterations=iters,
        cpu_ns_per_iter=cpu_ns,
        memory=MemoryProfile(
            bytes_per_iter=bytes_per_iter,
            stride_bytes=stride,
            footprint_bytes=footprint,
            reuse_fraction=reuse,
        ),
        imbalance=imbalance,
        serial_ns=serial_ns,
    )


def lulesh_application(mesh: int = 45) -> Application:
    """Build LULESH for ``mesh`` in {45, 60}."""
    require_in("mesh", mesh, LULESH_MESHES)
    num_elem = mesh ** 3
    num_node = (mesh + 1) ** 3
    elem_fields = float(num_elem * WORD)     # one scalar element field
    node_fields = float(num_node * WORD)

    near_perfect = ImbalanceSpec(kind="random", amplitude=0.012)
    perfect = ImbalanceSpec(kind="random", amplitude=0.006)
    slight = ImbalanceSpec(kind="random", amplitude=0.09)
    # EOS iterates per-element Newton solves whose counts vary across
    # the material region - a step profile with a heavy tail.
    eos_imbalance = ImbalanceSpec(
        kind="step", amplitude=0.22, heavy_fraction=0.2
    )
    pressure_imbalance = ImbalanceSpec(
        kind="step", amplitude=0.12, heavy_fraction=0.25
    )

    # per-material element subsets the EOS bursts operate on
    eos_iters = max(2048, num_elem // 12)

    big_regions = [
        _region(
            "CalcKinematicsForElems_", num_elem, 3.6e3,
            760.0, elem_fields * 22, 0.42, near_perfect,
        ),
        _region(
            "CalcMonotonicQGradientsForElems_", num_elem, 2.6e3,
            600.0, elem_fields * 18, 0.40, perfect,
        ),
        _region(
            "CalcFBHourglassForceForElems_", num_elem, 4.4e3,
            1000.0, elem_fields * 30, 0.35, slight,
        ),
        _region(
            "IntegrateStressForElems_", num_elem, 2.0e3,
            820.0, elem_fields * 24, 0.40, perfect,
        ),
        _region(
            "CalcLagrangeElements_", num_elem, 1.3e3,
            440.0, elem_fields * 12, 0.45, perfect,
        ),
        _region(
            "CalcVelocityForNodes_", num_node, 0.8e3,
            280.0, node_fields * 6, 0.50, perfect,
        ),
        _region(
            "CalcPositionForNodes_", num_node, 0.7e3,
            280.0, node_fields * 6, 0.50, perfect,
        ),
    ]
    tiny_regions = [
        # ~0.8 ms/call at the default config on Crill
        # EvalEOS/CalcPressure contain master-only compress/expand
        # glue (single constructs) - the serial_ns below - which is why
        # Figure 9 shows their inclusive time dominated by barrier
        # waits that no configuration can remove.
        RegionCall(
            region=_region(
                "EvalEOSForElems_", eos_iters, 0.95e3,
                64.0, elem_fields * 3, 0.45, eos_imbalance,
                serial_ns=0.38e6,
            ),
            calls=48,
        ),
        # ~1.4 ms/call
        RegionCall(
            region=_region(
                "CalcPressureForElems_", eos_iters, 1.7e3,
                72.0, elem_fields * 3, 0.45, pressure_imbalance,
                serial_ns=0.62e6,
            ),
            calls=24,
        ),
    ]
    sequence = tuple(
        [RegionCall(region=r) for r in big_regions] + tiny_regions
    )
    return Application(
        name="lulesh",
        workload=str(mesh),
        step_sequence=sequence,
        timesteps=LULESH_TIMESTEPS,
    )
