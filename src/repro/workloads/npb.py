"""Shared NPB machinery (BT and SP, NPB 3.3-OMP-C).

Both codes are 3-D structured-grid CFD kernels whose OpenMP regions
parallelize the outermost grid dimension, so the parallel trip count
equals the grid extent (minus boundary planes).  Classes follow the
NPB size table: B = 102^3, C = 162^3.  The paper ran "custom time
steps"; we fix 60 for both classes so runs stay comparable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import require_in

#: NPB class -> grid extent per dimension.
NPB_GRID = {"B": 102, "C": 162}

#: custom time steps used for all NPB runs in this reproduction.
NPB_TIMESTEPS = 60

#: bytes per grid point per solution variable (double precision).
WORD = 8


@dataclass(frozen=True)
class NpbGeometry:
    """Derived sizes for one NPB class."""

    npb_class: str
    grid: int

    @property
    def interior(self) -> int:
        """Interior extent - the parallel trip count of solver loops."""
        return self.grid - 2

    @property
    def plane_points(self) -> int:
        return self.grid * self.grid

    @property
    def plane_bytes(self) -> float:
        """One plane of one variable - the z-direction stride."""
        return float(self.plane_points * WORD)

    @property
    def row_bytes(self) -> float:
        """One grid row - the y-direction stride."""
        return float(self.grid * WORD)

    def field_mib(self, n_vars: int) -> float:
        """Footprint in bytes of ``n_vars`` full 3-D fields."""
        return float(self.grid ** 3 * WORD * n_vars)


def geometry(npb_class: str) -> NpbGeometry:
    require_in("npb_class", npb_class, tuple(NPB_GRID))
    return NpbGeometry(npb_class=npb_class, grid=NPB_GRID[npb_class])
