"""Figure 5: SP data set C at TDP - ARCS generalizes across workloads."""

from repro.analysis.bench import sweep_metrics
from repro.analysis.records import sweep_records
from repro.experiments.figures import fig5_sp_class_c
from repro.experiments.reporting import render_sweep


def test_fig5(benchmark, save_result, sweep_workers, sweep_cache):
    sweep = benchmark.pedantic(
        fig5_sp_class_c,
        kwargs={
            "repeats": 3,
            "workers": sweep_workers,
            "cache": sweep_cache,
        },
        rounds=1,
        iterations=1,
    )
    save_result(
        "fig5_sp_classC",
        render_sweep(sweep, "Fig. 5: SP-C on Crill (TDP)"),
        metrics=sweep_metrics(sweep),
        records=sweep_records(sweep),
        machine=sweep.machine,
        seed=0,
        config={"repeats": 3, "workers": sweep_workers,
                "cached": sweep_cache is not None},
    )
    offline = sweep.cells[("TDP", "arcs-offline")]
    # paper: up to 40% time / 42% energy improvement on the larger set
    assert offline.time_norm < 0.85
    assert offline.energy_norm is not None
    assert offline.energy_norm < 0.85
