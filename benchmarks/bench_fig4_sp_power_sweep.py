"""Figure 4: SP-B application-level time & package energy, five power
levels, default vs ARCS-Online vs ARCS-Offline on Crill."""

from repro.analysis.bench import sweep_metrics
from repro.analysis.records import sweep_records
from repro.experiments.figures import fig4_sp_power_sweep
from repro.experiments.reporting import render_sweep


def test_fig4(benchmark, save_result, sweep_workers, sweep_cache):
    sweep = benchmark.pedantic(
        fig4_sp_power_sweep,
        kwargs={
            "repeats": 3,
            "workers": sweep_workers,
            "cache": sweep_cache,
        },
        rounds=1,
        iterations=1,
    )
    save_result(
        "fig4_sp_power_sweep",
        render_sweep(sweep, "Fig. 4: SP-B on Crill"),
        metrics=sweep_metrics(sweep),
        records=sweep_records(sweep),
        machine=sweep.machine,
        seed=0,
        config={"repeats": 3, "workers": sweep_workers,
                "cached": sweep_cache is not None},
    )
    for cap in sweep.caps:
        label = sweep.cap_label(cap)
        offline = sweep.cells[(label, "arcs-offline")]
        online = sweep.cells[(label, "arcs-online")]
        # "all the strategies in all five power levels outperform the
        # default configuration by a large margin" (26-40%)
        assert offline.time_norm < 0.85
        assert online.time_norm < 0.95
        assert offline.energy_norm is not None
        assert offline.energy_norm < 0.90
    best_time_gain = 1.0 - min(
        sweep.cells[(sweep.cap_label(c), "arcs-offline")].time_norm
        for c in sweep.caps
    )
    assert best_time_gain > 0.20
