"""Tuning-service stress benchmark: one daemon, hundreds of tenants.

Boots ONE real daemon (:class:`~repro.service.daemon.ThreadedDaemon`)
and drives it with 200+ concurrent clients, each running its own
deterministic fault injector (the ``examples/netfaults.json`` mix:
refused connects, hangs, slow and torn responses, mid-write server
crashes).  Every client performs a lookup/publish workload over a
shared key population; the acceptance criteria:

* the daemon survives the whole storm (final ``ping`` answers);
* zero unhandled client errors - every network failure either retries
  to success or surfaces as a typed :class:`ServiceError` the
  ConfigSource chain would degrade on;
* the run reports store hit rate plus client-side p50/p95/p99 request
  latencies into ``BENCH_service_stress.json``.

Latency numbers are wall-clock and therefore marked ``info`` (never
gated); the structural counters (clients completed, unhandled errors)
are the hard metrics.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

from repro.faults.inject import make_injector
from repro.faults.plan import FaultPlan, FaultSpec
from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import ThreadedDaemon
from repro.util.tables import format_table

N_CLIENTS = 200
OPS_PER_CLIENT = 8
KEY_POPULATION = 40
SEED = 1789

#: the examples/netfaults.json mix, scaled down so the retry budget
#: usually wins (the point is sustained throughput under faults, not
#: a dead network).
FAULT_PLAN = FaultPlan(
    specs=(
        FaultSpec(
            site="service.connect", action="refused", probability=0.06
        ),
        FaultSpec(
            site="service.response", action="hang", probability=0.03
        ),
        FaultSpec(
            site="service.response",
            action="slow",
            probability=0.05,
            magnitude=0.002,
        ),
        FaultSpec(
            site="service.payload", action="torn", probability=0.03
        ),
        FaultSpec(
            site="service.payload", action="corrupt", probability=0.03
        ),
    ),
    seed=SEED,
)


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(q * (len(sorted_values) - 1))
    )
    return sorted_values[index]


def _client_workload(
    index: int, address: tuple[str, int]
) -> dict[str, float | int | list[float]]:
    """One tenant: publish its own entry, then look up a spread of
    keys (its own plus neighbours'), under its own fault stream."""
    client = ServiceClient(
        address,
        deadline_s=1.0,
        faults=make_injector(FAULT_PLAN, salt=("stress", index)),
    )
    latencies: list[float] = []
    fallbacks = 0
    errors = 0
    for op in range(OPS_PER_CLIENT):
        key = f"ctx-{(index + op) % KEY_POPULATION:04d}"
        t0 = time.perf_counter()
        try:
            if op == 0:
                client.put(key, {"schema": 1, "owner": index})
            else:
                client.get(key)
        except ServiceError:
            # what the ConfigSource chain would degrade on: counted,
            # never raised further.
            fallbacks += 1
        except Exception:  # noqa: BLE001 - the hard failure counter
            errors += 1
        latencies.append(time.perf_counter() - t0)
    return {
        "index": index,
        "fallbacks": fallbacks,
        "errors": errors,
        "latencies": latencies,
    }


def test_service_stress(save_result, tmp_path):
    with ThreadedDaemon(tmp_path / "store", capacity=4096) as td:
        address = td.address
        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=64) as pool:
            reports = list(
                pool.map(
                    lambda i: _client_workload(i, address),
                    range(N_CLIENTS),
                )
            )
        wall_s = time.perf_counter() - started
        # the daemon must still be alive and coherent after the storm
        probe = ServiceClient(address, deadline_s=5.0)
        final = probe.stats()

    latencies = sorted(
        latency
        for report in reports
        for latency in report["latencies"]
    )
    fallbacks = sum(r["fallbacks"] for r in reports)
    errors = sum(r["errors"] for r in reports)
    requests = len(latencies)
    stats = final["stats"]
    served = stats["hits"] + stats["misses"]
    hit_rate = stats["hits"] / served if served else 0.0
    p50, p95, p99 = (
        _percentile(latencies, q) for q in (0.50, 0.95, 0.99)
    )

    assert len(reports) == N_CLIENTS
    assert errors == 0, f"{errors} unhandled client error(s)"
    assert final["ok"] is True
    assert stats["puts"] >= 1 and served >= 1

    rows = [
        ["clients", str(N_CLIENTS)],
        ["client requests", str(requests)],
        ["typed fallbacks", str(fallbacks)],
        ["unhandled errors", str(errors)],
        ["store hit rate", f"{hit_rate:.3f}"],
        ["p50 latency (ms)", f"{p50 * 1e3:.2f}"],
        ["p95 latency (ms)", f"{p95 * 1e3:.2f}"],
        ["p99 latency (ms)", f"{p99 * 1e3:.2f}"],
        ["wall time (s)", f"{wall_s:.2f}"],
    ]
    save_result(
        "service_stress",
        format_table(["metric", "value"], rows),
        metrics={
            "clients": {"value": N_CLIENTS, "direction": "higher"},
            "requests": {"value": requests, "direction": "higher"},
            "unhandled_errors": errors,
            "fallbacks": {"value": fallbacks, "direction": "info"},
            "hit_rate": {"value": hit_rate, "direction": "higher"},
            "p50_latency_ms": {
                "value": p50 * 1e3,
                "direction": "info",
            },
            "p95_latency_ms": {
                "value": p95 * 1e3,
                "direction": "info",
            },
            "p99_latency_ms": {
                "value": p99 * 1e3,
                "direction": "info",
            },
            "wall_s": {"value": wall_s, "direction": "info"},
        },
        seed=SEED,
        config={
            "clients": N_CLIENTS,
            "ops_per_client": OPS_PER_CLIENT,
            "key_population": KEY_POPULATION,
            "fault_sites": sorted(
                {spec.site for spec in FAULT_PLAN.specs}
            ),
        },
    )
