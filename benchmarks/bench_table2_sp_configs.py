"""Table II: optimal configurations chosen by ARCS-Offline for SP's
four major regions at TDP on Crill."""

from repro.analysis.records import table2_records
from repro.experiments.reporting import render_table2
from repro.experiments.tables import table2_sp_optimal_configs


def test_table2(benchmark, save_result):
    rows = benchmark.pedantic(
        table2_sp_optimal_configs, rounds=1, iterations=1
    )
    save_result(
        "table2_sp_optimal_configs",
        render_table2(rows),
        records=table2_records(rows),
        machine="crill",
        seed=0,
    )
    assert [r.region for r in rows] == [
        "compute_rhs", "x_solve", "y_solve", "z_solve",
    ]
    # shape check: the tuned configs are not the default configuration
    assert all(r.config != "32, static, default" for r in rows)
