"""Section III-C: ARCS overhead characterization.

Reproduces the three overhead classes: configuration-changing overhead
(~0.8 ms per change on Crill), APEX instrumentation overhead, and
online search overhead (up to ~10% of execution time).
"""

import pytest

from repro.experiments.runner import ExperimentSetup, run_arcs_online
from repro.machine.node import SimulatedNode
from repro.machine.spec import crill
from repro.openmp.runtime import OpenMPRuntime
from repro.openmp.types import ScheduleKind
from repro.util.tables import format_table
from repro.workloads.sp import sp_application


def measure_config_change_overhead() -> float:
    """Simulated cost of one full configuration change (two runtime
    routine calls)."""
    runtime = OpenMPRuntime(SimulatedNode(crill()), noise_sigma=0.0)
    t0 = runtime.node.now_s
    runtime.omp_set_num_threads(8)
    runtime.omp_set_schedule(ScheduleKind.GUIDED, 8)
    return runtime.node.now_s - t0


def test_config_change_overhead(benchmark, save_result):
    overhead = benchmark(measure_config_change_overhead)
    save_result(
        "overhead_config_change",
        f"Configuration-changing overhead per region call: "
        f"{overhead * 1e3:.3f} ms (paper, Crill: ~0.8 ms)",
        metrics={
            "config_change_overhead_s": {
                "value": overhead, "direction": "lower", "unit": "s",
            }
        },
        machine="crill",
        seed=0,
    )
    assert overhead == pytest.approx(0.8e-3, rel=0.01)


def online_overhead_breakdown():
    setup = ExperimentSetup(spec=crill(), repeats=1)
    result = run_arcs_online(sp_application("B"), setup)
    assert result.overhead is not None
    return result


def test_online_search_overhead(benchmark, save_result):
    result = benchmark.pedantic(
        online_overhead_breakdown, rounds=1, iterations=1
    )
    overhead = result.overhead
    rows = [
        ("configuration changing", f"{overhead.config_change_s:.4f}",
         overhead.config_change_calls),
        ("APEX instrumentation", f"{overhead.instrumentation_s:.4f}",
         "-"),
        ("search (online only)", f"{overhead.search_s:.4f}", "-"),
        ("total", f"{overhead.total_s:.4f}", "-"),
    ]
    save_result(
        "overhead_online_breakdown",
        format_table(
            ("overhead class", "seconds", "events"),
            rows,
            title=(
                "Section III-C overheads, ARCS-Online on SP-B "
                f"(app time {result.time_s:.2f}s, overhead "
                f"{100 * overhead.fraction_of(result.time_s):.1f}%)"
            ),
        ),
        metrics={
            "config_change_s": {
                "value": overhead.config_change_s,
                "direction": "lower", "unit": "s",
            },
            "instrumentation_s": {
                "value": overhead.instrumentation_s,
                "direction": "lower", "unit": "s",
            },
            "search_s": {
                "value": overhead.search_s,
                "direction": "lower", "unit": "s",
            },
            "overhead_fraction": {
                "value": overhead.fraction_of(result.time_s),
                "direction": "lower",
            },
            "app_time_s": {
                "value": result.time_s,
                "direction": "lower", "unit": "s",
            },
        },
        machine="crill",
        seed=0,
    )
    # search overhead observed "as high as 10% of total execution time"
    assert overhead.search_s / result.time_s < 0.20
    assert overhead.total_s > 0
