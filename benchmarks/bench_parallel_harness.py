"""The parallel cached experiment harness on the Figure 4 workload:
SP-B on Crill across all five power levels.

Three configurations of the same sweep are timed and must produce
byte-identical results:

* **serial**   - ``workers=1``, no cache (the original code path);
* **parallel** - ``workers=4``, cold cache;
* **warm**     - ``workers=4``, warm cache (every cell replayed from
  ``results/.cache``-style storage, zero tuning runs executed).

The parallel speedup target (>= 3x at 4 workers) is only asserted on
machines with at least 4 CPUs - pool fan-out cannot beat serial on a
single core - while the warm-cache rerun must always be >= 3x faster
than the cold serial sweep (in practice it is orders of magnitude
faster).  Override the parallel target with
``REPRO_BENCH_MIN_SPEEDUP=<float>``.
"""

from __future__ import annotations

import json
import os
import time

from repro.experiments.cache import ExperimentCache, result_to_json
from repro.experiments.figures import power_sweep
from repro.experiments.runner import CRILL_POWER_LEVELS
from repro.machine.spec import crill
from repro.workloads.sp import sp_application

REPEATS = 3
WORKERS = 4


def _encode(sweep) -> str:
    """Canonical byte representation of every cell's summary."""
    return json.dumps(
        {
            f"{label}/{strategy}": result_to_json(result)
            for (label, strategy), result in sorted(sweep.results.items())
        },
        sort_keys=True,
    )


def _run_comparison(cache_root) -> dict:
    app = sp_application("B")
    spec = crill()

    t0 = time.perf_counter()
    serial = power_sweep(
        app, spec, CRILL_POWER_LEVELS, repeats=REPEATS
    )
    t_serial = time.perf_counter() - t0

    cold_cache = ExperimentCache(cache_root)
    t0 = time.perf_counter()
    parallel = power_sweep(
        app, spec, CRILL_POWER_LEVELS, repeats=REPEATS,
        workers=WORKERS, cache=cold_cache,
    )
    t_parallel = time.perf_counter() - t0

    warm_cache = ExperimentCache(cache_root)
    t0 = time.perf_counter()
    warm = power_sweep(
        app, spec, CRILL_POWER_LEVELS, repeats=REPEATS,
        workers=WORKERS, cache=warm_cache,
    )
    t_warm = time.perf_counter() - t0

    return {
        "t_serial": t_serial,
        "t_parallel": t_parallel,
        "t_warm": t_warm,
        "serial_blob": _encode(serial),
        "parallel_blob": _encode(parallel),
        "warm_blob": _encode(warm),
        "warm_hits": warm_cache.stats.hits,
        "warm_misses": warm_cache.stats.misses,
        "cells": len(serial.results),
    }


def test_parallel_harness(benchmark, save_result, tmp_path):
    stats = benchmark.pedantic(
        _run_comparison, args=(tmp_path / "cache",),
        rounds=1, iterations=1,
    )

    # correctness: all three paths are byte-identical
    assert stats["parallel_blob"] == stats["serial_blob"]
    assert stats["warm_blob"] == stats["serial_blob"]
    # the warm rerun served every cell from the cache: no tuning runs,
    # no measurements executed
    assert stats["warm_hits"] == stats["cells"]
    assert stats["warm_misses"] == 0

    parallel_speedup = stats["t_serial"] / stats["t_parallel"]
    warm_speedup = stats["t_serial"] / stats["t_warm"]
    assert warm_speedup >= 3.0

    min_speedup = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "3.0"))
    cpus = os.cpu_count() or 1
    if cpus >= WORKERS:
        assert parallel_speedup >= min_speedup

    # wall-clock timings are machine-dependent: recorded as info, gated
    # by the asserts above
    save_result(
        "bench_parallel_harness",
        "\n".join(
            [
                "Parallel cached harness: SP-B on Crill, "
                f"{len(CRILL_POWER_LEVELS)} power levels x 3 strategies "
                f"({stats['cells']} cells, repeats={REPEATS})",
                f"  serial (1 worker, no cache) : "
                f"{stats['t_serial']:8.2f} s",
                f"  parallel ({WORKERS} workers, cold)  : "
                f"{stats['t_parallel']:8.2f} s  "
                f"({parallel_speedup:.2f}x, {cpus} CPU(s) available)",
                f"  warm cache rerun            : "
                f"{stats['t_warm']:8.2f} s  ({warm_speedup:.1f}x, "
                f"{stats['warm_hits']}/{stats['cells']} cells cached)",
            ]
        ),
        metrics={
            "t_serial_s": {"value": stats["t_serial"],
                           "direction": "info", "unit": "s"},
            "t_parallel_s": {"value": stats["t_parallel"],
                             "direction": "info", "unit": "s"},
            "t_warm_s": {"value": stats["t_warm"],
                         "direction": "info", "unit": "s"},
            "parallel_speedup": {"value": parallel_speedup,
                                 "direction": "info", "unit": "x"},
            "warm_speedup": {"value": warm_speedup,
                             "direction": "info", "unit": "x"},
            "warm_hits": {"value": float(stats["warm_hits"]),
                          "direction": "higher"},
            "warm_misses": {"value": float(stats["warm_misses"]),
                            "direction": "lower"},
        },
        machine="crill",
        config={"repeats": REPEATS, "workers": WORKERS,
                "cells": stats["cells"]},
    )
