"""Figure 8: LULESH mesh 45 - time & energy on Crill across power
levels, and time on Minotaur (TDP)."""

from repro.analysis.bench import sweep_metrics
from repro.analysis.records import sweep_records
from repro.experiments.figures import fig8_lulesh
from repro.experiments.reporting import render_sweep


def test_fig8(benchmark, save_result, sweep_workers, sweep_cache):
    crill_sweep, minotaur_sweep = benchmark.pedantic(
        fig8_lulesh,
        kwargs={
            "repeats": 3,
            "workers": sweep_workers,
            "cache": sweep_cache,
        },
        rounds=1,
        iterations=1,
    )
    config = {"repeats": 3, "workers": sweep_workers,
              "cached": sweep_cache is not None}
    save_result(
        "fig8_lulesh_crill",
        render_sweep(crill_sweep, "Fig. 8a/8b: LULESH-45 on Crill"),
        metrics=sweep_metrics(crill_sweep),
        records=sweep_records(crill_sweep),
        machine=crill_sweep.machine,
        seed=0,
        config=config,
    )
    save_result(
        "fig8_lulesh_minotaur",
        render_sweep(
            minotaur_sweep, "Fig. 8c: LULESH-45 on Minotaur (time only)"
        ),
        metrics=sweep_metrics(minotaur_sweep),
        records=sweep_records(minotaur_sweep),
        machine=minotaur_sweep.machine,
        seed=0,
        config=config,
    )
    for cap in crill_sweep.caps:
        label = crill_sweep.cap_label(cap)
        online = crill_sweep.cells[(label, "arcs-online")]
        offline = crill_sweep.cells[(label, "arcs-offline")]
        # Crill: Online degrades at every power level (Section V-C);
        # Offline stays within a few percent of the default
        assert online.time_norm > 0.995
        assert 0.90 < offline.time_norm < 1.06
        # energy improves for Offline at every level
        assert offline.energy_norm is not None
        assert offline.energy_norm < 1.0
    # Minotaur: Offline clearly wins, Online modest (paper: 14% / 4%)
    mino_online = minotaur_sweep.cells[("TDP", "arcs-online")]
    mino_offline = minotaur_sweep.cells[("TDP", "arcs-offline")]
    assert mino_offline.time_norm < 0.96
    assert mino_offline.time_norm < mino_online.time_norm
