"""Telemetry overhead characterization.

The instrumented control loop must cost ~nothing when the bus is
disabled (the default: every hook is one attribute load plus a branch)
and stay cheap when enabled.  Three configurations of the same
ARCS-Online run are measured:

* **disabled** - the shipped default (no-op recorder);
* **enabled, no sink** - flight recorder + in-memory metrics only,
  what a run pays for post-mortem dumps on ``RunAbortedError``;
* **enabled + JSONL** - full event log streaming to disk, what
  ``repro run --telemetry`` pays.

The hard gate here is the disabled case; the enabled cases are
reported (and separately gated at 1.5x in CI via
``tools/smoke_sweep.py --telemetry-dir``).
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.experiments.runner import ExperimentSetup, run_arcs_online
from repro.machine.spec import crill
from repro.telemetry import JsonlSink, TelemetryBus, install
from repro.util.tables import format_table
from repro.workloads.synthetic import synthetic_application

ROUNDS = 5


def _setup():
    return ExperimentSetup(spec=crill(), repeats=2, seed=0)


def _app():
    return synthetic_application(timesteps=30)


def _best_of(fn, rounds=ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _run_disabled():
    run_arcs_online(_app(), _setup())


def _run_enabled_no_sink():
    tb = TelemetryBus(enabled=True)
    previous = install(tb)
    try:
        run_arcs_online(_app(), _setup())
    finally:
        install(previous)
        tb.close()


def _run_enabled_jsonl():
    with tempfile.TemporaryDirectory() as tmp:
        tb = TelemetryBus(enabled=True)
        tb.add_sink(JsonlSink(Path(tmp) / "telemetry.jsonl"))
        previous = install(tb)
        try:
            run_arcs_online(_app(), _setup())
        finally:
            install(previous)
            tb.close()


def test_telemetry_overhead(save_result):
    _run_disabled()  # warm imports and allocator before timing
    baseline = _best_of(_run_disabled)
    no_sink = _best_of(_run_enabled_no_sink)
    jsonl = _best_of(_run_enabled_jsonl)

    def row(label, t):
        return (
            label, f"{t * 1e3:.1f}", f"{t / baseline:.3f}x",
            f"{(t / baseline - 1.0) * 100:+.1f}%",
        )

    table = format_table(
        ("mode", "best-of-5 (ms)", "vs disabled", "overhead"),
        [
            row("disabled (default)", baseline),
            row("enabled, no sink", no_sink),
            row("enabled + JSONL sink", jsonl),
        ],
    )
    # all wall-clock: machine- and load-dependent, so info-only
    save_result(
        "telemetry_overhead",
        table,
        metrics={
            "disabled_s": {"value": baseline, "direction": "info",
                           "unit": "s"},
            "no_sink_s": {"value": no_sink, "direction": "info",
                          "unit": "s"},
            "jsonl_s": {"value": jsonl, "direction": "info",
                        "unit": "s"},
            "no_sink_ratio": {"value": no_sink / baseline,
                              "direction": "info", "unit": "x"},
            "jsonl_ratio": {"value": jsonl / baseline,
                            "direction": "info", "unit": "x"},
        },
        machine="crill",
        seed=0,
        config={"rounds": ROUNDS},
    )

    assert baseline > 0
    # enabled with only the flight recorder + metrics stays light
    assert no_sink / baseline < 1.30
    # the full JSONL stream stays under the CI gate
    assert jsonl / baseline < 1.60


def test_disabled_hooks_are_noops(save_result):
    """Every disabled-bus operation is an attribute load plus a
    branch; even a very generous 1 microsecond/op ceiling is ~10x the
    expected cost, so regressions (e.g. building attrs before the
    enabled check) fail loudly without being timer-noise flaky."""
    tb = TelemetryBus(enabled=False)
    n = 200_000

    def spin_ops():
        for _ in range(n):
            tb.count("c")
            tb.emit("e", a=1)
            tb.observe("h", 1.0)

    spin_ops()  # warm
    t0 = time.perf_counter()
    spin_ops()
    per_op_ns = (time.perf_counter() - t0) / (3 * n) * 1e9
    save_result(
        "telemetry_disabled_noop",
        f"disabled telemetry hook cost: {per_op_ns:.0f} ns/op "
        f"(ceiling 1000 ns)",
        metrics={
            "per_op_ns": {"value": per_op_ns, "direction": "info",
                          "unit": "ns"},
        },
        config={"ops": 3 * n},
    )
    assert per_op_ns < 1000
