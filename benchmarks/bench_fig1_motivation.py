"""Figure 1: execution time of the BT x_solve motivation kernel with
best vs default configurations across power levels."""

from repro.analysis.records import fig1_records
from repro.experiments.figures import fig1_motivation
from repro.experiments.reporting import render_fig1


def test_fig1(benchmark, save_result):
    rows = benchmark.pedantic(fig1_motivation, rounds=1, iterations=1)
    save_result(
        "fig1_motivation",
        render_fig1(rows),
        metrics={
            f"improvement_pct[{r.label}]": {
                "value": r.improvement_pct, "direction": "higher",
            }
            for r in rows
            if r.improvement_pct is not None
        },
        records=fig1_records(rows),
        machine="crill",
        seed=0,
    )

    capped = [r for r in rows if r.default_time_s is not None]
    # the optimal configuration beats the default at every power level
    assert all(r.improvement_pct > 5.0 for r in capped)
    # the paper's ~10-20% headroom
    assert max(r.improvement_pct for r in capped) > 12.0
    # the optimal configuration at a lower power level can beat the
    # default at TDP (Section II's 70W-vs-TDP observation)
    tdp_default = next(r for r in capped if r.label == "TDP")
    best_70 = next(r for r in capped if r.label == "70W")
    assert best_70.time_s < tdp_default.default_time_s
