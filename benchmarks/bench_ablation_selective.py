"""Ablation: selective tuning of small regions (the paper's future
work: "we plan to improve ARCS to enable selective tuning for OpenMP
regions to avoid overheads on the smaller regions").

On LULESH/Crill, plain ARCS-Online loses to the default because tiny
EvalEOS/CalcPressure calls pay the configuration-change overhead; the
selective variant skips regions whose per-call time is below a few
multiples of that overhead and should recover (most of) the loss.
"""

from repro.experiments.runner import (
    ExperimentSetup,
    run_arcs_online,
    run_default,
)
from repro.machine.spec import crill
from repro.openmp.runtime import CONFIG_CALL_OVERHEAD_S
from repro.util.tables import format_table
from repro.workloads.lulesh import lulesh_application


def run_ablation():
    app = lulesh_application(45)
    setup = ExperimentSetup(spec=crill(), repeats=1)
    base = run_default(app, setup)
    online = run_arcs_online(app, setup)
    selective = run_arcs_online(
        app,
        setup,
        selective_threshold_s=5.0 * 2 * CONFIG_CALL_OVERHEAD_S,
    )
    return base, online, selective


def test_selective_tuning(benchmark, save_result):
    base, online, selective = benchmark.pedantic(
        run_ablation, rounds=1, iterations=1
    )
    rows = [
        (r.strategy, f"{r.time_s:.3f}",
         f"{r.time_s / base.time_s:.3f}")
        for r in (base, online, selective)
    ]
    save_result(
        "ablation_selective",
        format_table(
            ("strategy", "time (s)", "normalized"),
            rows,
            title="Ablation: selective tuning on LULESH-45 (Crill, TDP)",
        ),
        metrics={
            "default_time_s": {
                "value": base.time_s, "direction": "lower", "unit": "s",
            },
            "online_time_s": {
                "value": online.time_s, "direction": "lower",
                "unit": "s",
            },
            "selective_time_s": {
                "value": selective.time_s, "direction": "lower",
                "unit": "s",
            },
        },
        records=[
            {"strategy": r.strategy, "time_s": r.time_s,
             "time_norm": r.time_s / base.time_s}
            for r in (base, online, selective)
        ],
        machine="crill",
        seed=0,
    )
    # plain online loses on LULESH (paper); selective recovers
    assert online.time_s > base.time_s * 0.995
    assert selective.time_s < online.time_s
