"""Figure 6: BT compute_rhs features, default vs ARCS-Offline."""

from repro.analysis.bench import feature_metrics
from repro.analysis.records import feature_records
from repro.experiments.figures import fig6_bt_features
from repro.experiments.reporting import render_features


def test_fig6(benchmark, save_result):
    comparison = benchmark.pedantic(
        fig6_bt_features, rounds=1, iterations=1
    )
    save_result(
        "fig6_bt_features",
        render_features(
            comparison,
            "Fig. 6: BT compute_rhs, default vs ARCS-Offline (TDP)",
        ),
        metrics=feature_metrics(comparison),
        records=feature_records(comparison),
        machine="crill",
        seed=0,
    )
    feats = comparison.offline_normalized["compute_rhs"]
    # paper: significant OMP_BARRIER improvement (~80%) for compute_rhs
    assert feats["OMP_BARRIER"] < 0.75
    # and the long-stride L1 behaviour is algorithmically stuck near 1.0
    assert feats["L1 miss"] > 0.85
