"""Table I: the ARCS search-parameter sets."""

from repro.experiments.reporting import render_table1
from repro.experiments.tables import table1_search_space


def test_table1(benchmark, save_result):
    rows = benchmark(table1_search_space)
    save_result("table1_search_space", render_table1(rows))
    assert len(rows) == 4
    assert "2, 4, 8, 16, 24, 32, default" in rows[0].values
    assert "10, 20, 40, 80, 120, 160, default" in rows[1].values
