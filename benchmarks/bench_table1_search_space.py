"""Table I: the ARCS search-parameter sets - and the cost of walking
them.

``test_batched_exhaustive_speedup`` measures the batched evaluator
(:mod:`repro.openmp.batch`) against the scalar path over the full
Table-I configuration space for every SP-B region, the workload of one
ARCS-Offline tuning pass.  Two numbers are recorded:

* *cold*: one fresh engine evaluating the whole space per region,
  scalar loop vs one vectorized prefetch;
* *memo-warm*: the same search repeated on a fresh engine (the sweep
  repeat / Harmony restart pattern), where the process-wide memo
  serves every record.

The memo-inclusive number is the acceptance gate (>= 3x).
"""

from __future__ import annotations

import time

from repro.analysis.records import table1_records
from repro.core.config import config_from_point, search_space_for
from repro.experiments.reporting import render_table1
from repro.experiments.tables import table1_search_space
from repro.machine.node import SimulatedNode
from repro.machine.spec import crill
from repro.openmp import batch
from repro.openmp.engine import ExecutionEngine
from repro.workloads.sp import sp_application


def test_table1(benchmark, save_result):
    rows = benchmark(table1_search_space)
    save_result(
        "table1_search_space",
        render_table1(rows),
        records=table1_records(rows),
        machine=("crill", "minotaur"),
    )
    assert len(rows) == 4
    assert "2, 4, 8, 16, 24, 32, default" in rows[0].values
    assert "10, 20, 40, 80, 120, 160, default" in rows[1].values


def _fresh_engine(cap_w: float) -> ExecutionEngine:
    node = SimulatedNode(crill())
    node.rapl.set_package_cap(cap_w, node.now_s)
    return ExecutionEngine(node)


def _full_space_search(engine: ExecutionEngine, regions, configs):
    """One exhaustive per-region pass: evaluate every config for every
    region through ``execute`` (the measurement path)."""
    for region in regions:
        engine.prefetch(region, configs)
        for config in configs:
            engine.execute(region, config)


def test_batched_exhaustive_speedup(save_result):
    spec = crill()
    space = search_space_for(spec)
    configs = tuple(
        config_from_point(space.decode(idx))
        for idx in space.iter_indices()
    )
    regions = sp_application("B").regions()
    n_evals = len(regions) * len(configs)

    was = batch.batching_enabled()
    try:
        # scalar baseline: batching (and the memo) fully disabled
        batch.set_batching(False)
        batch.clear_memo()
        t0 = time.perf_counter()
        _full_space_search(_fresh_engine(85.0), regions, configs)
        scalar_s = time.perf_counter() - t0

        # batched, cold: empty memo, one vectorized pass per region
        batch.set_batching(True)
        batch.clear_memo()
        t0 = time.perf_counter()
        _full_space_search(_fresh_engine(85.0), regions, configs)
        cold_s = time.perf_counter() - t0

        # batched, memo-warm: the same search on a fresh engine (the
        # sweep-repeat / strategy-restart pattern)
        t0 = time.perf_counter()
        _full_space_search(_fresh_engine(85.0), regions, configs)
        warm_s = time.perf_counter() - t0
    finally:
        batch.set_batching(was)
        batch.clear_memo()

    cold_speedup = scalar_s / cold_s
    warm_speedup = scalar_s / warm_s
    lines = [
        "Batched exhaustive per-region search (SP-B, Crill, 85W)",
        f"  space: {len(configs)} configs x {len(regions)} regions "
        f"= {n_evals} evaluations",
        f"  scalar          : {scalar_s:8.3f} s",
        f"  batched (cold)  : {cold_s:8.3f} s   "
        f"({cold_speedup:.2f}x)",
        f"  batched (memo)  : {warm_s:8.3f} s   "
        f"({warm_speedup:.2f}x)",
    ]
    # wall-clock numbers: real perf evidence on *this* machine, but
    # machine-dependent - recorded as info, gated by the asserts below
    save_result(
        "batched_search_speedup",
        "\n".join(lines),
        metrics={
            "scalar_s": {"value": scalar_s, "direction": "info",
                         "unit": "s"},
            "cold_s": {"value": cold_s, "direction": "info",
                       "unit": "s"},
            "warm_s": {"value": warm_s, "direction": "info",
                       "unit": "s"},
            "cold_speedup": {"value": cold_speedup,
                             "direction": "info", "unit": "x"},
            "warm_speedup": {"value": warm_speedup,
                             "direction": "info", "unit": "x"},
        },
        machine="crill",
        config={"configs": len(configs), "regions": len(regions)},
    )
    # acceptance gate: the repeated-search pattern must be >= 3x; the
    # cold pass must at least clearly win
    assert warm_speedup >= 3.0, lines
    assert cold_speedup >= 1.5, lines
