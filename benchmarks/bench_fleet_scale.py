"""Fleet-at-scale benchmark: 64 ARCS nodes under one global budget.

Runs the full fault-tolerant fleet simulation - hierarchical budget
allocation, failure detection, journaled state - over a synthesized
64-node mixed Crill/Minotaur fleet with the hostile fleet-tier fault
plan armed (``examples/fleetfaults.json``).  The throughput numbers
(nodes/sec, wall time) are machine-dependent and marked ``info``; the
simulation itself is deterministic, so the robustness metrics -
survival rate, allocator reaction latency to a declared death, step
count - are exact and regression-gated by ``repro analysis compare``.
"""

import time
from pathlib import Path

from repro.analysis.records import fleet_survival_records
from repro.faults.plan import load_fault_plan
from repro.fleet import (
    FleetSimulation,
    fleet_result_to_json,
    render_fleet,
    synthesize_fleet,
)

_REPO = Path(__file__).resolve().parent.parent

#: the scale floor this benchmark exists to prove.
N_NODES = 64


def run():
    plan = synthesize_fleet(N_NODES, seed=0, max_steps=120)
    faults = load_fault_plan(_REPO / "examples" / "fleetfaults.json")
    t0 = time.perf_counter()
    result = FleetSimulation(plan, faults).run()
    return result, time.perf_counter() - t0


def test_fleet_scale(benchmark, save_result):
    result, wall_s = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.started == N_NODES
    latencies = [lat for _node, lat in result.reaction_latencies]
    mean_latency = (
        sum(latencies) / len(latencies) if latencies else 0.0
    )
    metrics = {
        "nodes_per_sec": {
            "value": N_NODES / wall_s if wall_s > 0 else 0.0,
            "direction": "info",
            "unit": "nodes/s",
        },
        "wall_s": {
            "value": wall_s, "direction": "info", "unit": "s",
        },
        "survival_rate": {
            "value": result.survival_rate, "direction": "higher",
        },
        "completion_rate": {
            "value": result.completion_rate, "direction": "higher",
        },
        "reaction_latency_steps": {
            "value": mean_latency,
            "direction": "lower",
            "unit": "steps",
        },
        "steps": {"value": result.steps, "direction": "lower",
                  "unit": "steps"},
        "peak_budget_w": {
            "value": result.peak_budget_w,
            "direction": "info",
            "unit": "W",
        },
    }
    save_result(
        "fleet_scale",
        render_fleet(result),
        metrics=metrics,
        records=fleet_survival_records(fleet_result_to_json(result)),
        machine="fleet",
        seed=0,
        config={
            "nodes": N_NODES,
            "global_cap_w": result.global_cap_w,
            "faults": "examples/fleetfaults.json",
            "max_steps": 120,
        },
    )
