"""Benchmark-suite fixtures.

Each benchmark regenerates one of the paper's tables/figures, prints it
and writes it under ``results/`` so the whole evaluation can be
reassembled from one ``pytest benchmarks/ --benchmark-only`` run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_result(results_dir):
    def _save(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _save
