"""Benchmark-suite fixtures.

Each benchmark regenerates one of the paper's tables/figures, prints
it and writes it under ``results/`` so the whole evaluation can be
reassembled from one ``pytest benchmarks/ --benchmark-only`` run.
Every ``results/<name>.txt`` is paired with a schema-stamped
``BENCH_<name>.json`` (:mod:`repro.analysis.bench`) carrying the same
numbers machine-readably - metrics with compare directions, tidy
record rows, and machine/seed/config provenance - which
``repro analysis compare`` diffs against the committed baselines under
``results/baselines/``.

Both files are written through :mod:`repro.util.atomicio`, so a killed
benchmark run leaves either the old artifact or the new one - never a
truncated half.

The sweep benchmarks run on the parallel cached harness
(:mod:`repro.experiments.parallel`); two environment variables tune it:

* ``REPRO_BENCH_WORKERS=<n>``  - process-pool size (default 1, serial);
* ``REPRO_BENCH_NO_CACHE=1``   - disable the ``results/.cache`` result
  cache and recompute every cell.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis.bench import bench_payload, write_bench_json
from repro.experiments.cache import ExperimentCache
from repro.util.atomicio import atomic_write_text

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def sweep_workers() -> int:
    return max(1, int(os.environ.get("REPRO_BENCH_WORKERS", "1")))


@pytest.fixture(scope="session")
def sweep_cache(results_dir) -> ExperimentCache | None:
    if os.environ.get("REPRO_BENCH_NO_CACHE"):
        return None
    return ExperimentCache(results_dir / ".cache")


@pytest.fixture(scope="session")
def save_bench_json(results_dir):
    """Write one schema-stamped ``BENCH_<name>.json`` under
    ``results/``.

    ``metrics`` values are numbers (lower-is-better by default) or
    ``{"value": x, "direction": "lower"|"higher"|"info"}`` mappings;
    mark wall-clock-derived numbers ``info`` so the CI regression gate
    never trips on machine noise.
    """

    def _save(
        name: str,
        metrics=None,
        *,
        records=None,
        machine=None,
        seed=None,
        config=None,
    ) -> Path:
        return write_bench_json(
            results_dir,
            bench_payload(
                name,
                metrics,
                records=records,
                machine=machine,
                seed=seed,
                config=config,
            ),
        )

    return _save


@pytest.fixture(scope="session")
def save_result(results_dir, save_bench_json):
    """Persist one benchmark artifact: ``results/<name>.txt`` (the
    paper-style table, also printed) plus its ``BENCH_<name>.json``
    twin built from the keyword arguments."""

    def _save(
        name: str,
        text: str,
        *,
        metrics=None,
        records=None,
        machine=None,
        seed=None,
        config=None,
    ) -> None:
        atomic_write_text(results_dir / f"{name}.txt", text + "\n")
        save_bench_json(
            name,
            metrics,
            records=records,
            machine=machine,
            seed=seed,
            config=config,
        )
        print()
        print(text)

    return _save
