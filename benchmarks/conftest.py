"""Benchmark-suite fixtures.

Each benchmark regenerates one of the paper's tables/figures, prints it
and writes it under ``results/`` so the whole evaluation can be
reassembled from one ``pytest benchmarks/ --benchmark-only`` run.

The sweep benchmarks run on the parallel cached harness
(:mod:`repro.experiments.parallel`); two environment variables tune it:

* ``REPRO_BENCH_WORKERS=<n>``  - process-pool size (default 1, serial);
* ``REPRO_BENCH_NO_CACHE=1``   - disable the ``results/.cache`` result
  cache and recompute every cell.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.cache import ExperimentCache

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def sweep_workers() -> int:
    return max(1, int(os.environ.get("REPRO_BENCH_WORKERS", "1")))


@pytest.fixture(scope="session")
def sweep_cache(results_dir) -> ExperimentCache | None:
    if os.environ.get("REPRO_BENCH_NO_CACHE"):
        return None
    return ExperimentCache(results_dir / ".cache")


@pytest.fixture(scope="session")
def save_result(results_dir):
    def _save(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _save
