"""Ablation: search-strategy comparison (exhaustive vs Nelder-Mead vs
Parallel Rank Order vs random) on a real region-tuning objective.

The paper uses exhaustive (Offline) and Nelder-Mead (Online) and cites
PRO as available in Active Harmony; this ablation quantifies the
quality/cost trade-off among all of them.
"""

from repro.core.config import config_from_point, search_space_for
from repro.harmony.engine import STRATEGIES, make_strategy
from repro.harmony.session import TuningSession
from repro.machine.node import SimulatedNode
from repro.machine.spec import crill
from repro.openmp.engine import ExecutionEngine
from repro.util.tables import format_table
from repro.workloads.sp import sp_application


def run_ablation():
    spec = crill()
    space = search_space_for(spec)
    engine = ExecutionEngine(SimulatedNode(spec))
    region = next(
        rc.region
        for rc in sp_application("B").step_sequence
        if rc.region.name == "y_solve"
    )

    def objective(point) -> float:
        return engine._simulate(
            region, config_from_point(point)
        ).time_s

    results = {}
    for name in STRATEGIES:
        budget = space.size if name == "exhaustive" else 40
        session = TuningSession(
            space, make_strategy(name, space, max_evals=budget, seed=3)
        )
        evals = 0
        while not session.converged and evals < space.size + 10:
            point = session.suggest()
            session.report(objective(point))
            evals += 1
        results[name] = (session.best_value(), evals)
    return results


def test_search_strategy_ablation(benchmark, save_result):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    optimum = results["exhaustive"][0]
    rows = [
        (
            name,
            evals,
            f"{value * 1e3:.3f}",
            f"{100 * (value / optimum - 1):+.1f}%",
        )
        for name, (value, evals) in results.items()
    ]
    save_result(
        "ablation_search_strategies",
        format_table(
            ("strategy", "region executions", "best region time (ms)",
             "vs exhaustive optimum"),
            rows,
            title="Ablation: search strategies on SP y_solve (Crill, TDP)",
        ),
        metrics={
            f"best_time_s[{name}]": {
                "value": value, "direction": "lower", "unit": "s",
            }
            for name, (value, _evals) in results.items()
        },
        records=[
            {"strategy": name, "evals": evals, "best_time_s": value}
            for name, (value, evals) in results.items()
        ],
        machine="crill",
        seed=3,
    )
    nm_value, nm_evals = results["nelder-mead"]
    # Nelder-Mead gets within ~15% of the optimum at a fraction of the
    # evaluations - the reason ARCS-Online is viable at all
    assert nm_evals < results["exhaustive"][1] / 3
    assert nm_value <= optimum * 1.25
    # exhaustive is by construction the best
    assert all(v >= optimum for v, _ in results.values())
