"""Sample efficiency: surrogate-ranked search vs Nelder-Mead.

The surrogate strategy's pitch is that a model fit on *other* tuning
runs lets a new run measure only a handful of configurations instead
of searching.  This benchmark quantifies that on the Table I space:
the model is fit leave-one-cap-out (the target region's sweeps at
every *other* power cap, plus full sweeps of the sibling SP regions at
every cap including the target's), then both strategies tune SP
``y_solve`` at the held-out cap through the noisy runtime measurement
path - the same path real tuning sessions use.

The gate asserts the headline claim: the surrogate's choice lands
within 5% of the exhaustive optimum while spending at most a third of
the probes Nelder-Mead needs to converge, at both cap levels.
"""

from repro.core.config import config_from_point, search_space_for
from repro.harmony.engine import make_strategy
from repro.harmony.session import TuningSession
from repro.machine.node import SimulatedNode
from repro.machine.spec import crill
from repro.openmp.engine import ExecutionEngine
from repro.openmp.runtime import OpenMPRuntime
from repro.surrogate import SurrogateTuning, TrainingRecord, fit_surrogate
from repro.util.tables import format_table
from repro.workloads.sp import sp_application

SEED = 3
TOP_K = 4
NM_BUDGET = 40
TARGET_REGION = "y_solve"
TRAIN_REGIONS = ("x_solve", "z_solve", "compute_rhs", "txinvr", "add")
ALL_CAPS = (55.0, 70.0, 85.0, 100.0, None)
TARGET_CAPS = (85.0, 55.0)


def _engine(spec, cap_w):
    node = SimulatedNode(spec)
    if cap_w is not None:
        node.set_power_cap(cap_w)
        node.settle_after_cap()
    return ExecutionEngine(node)


def _runtime(spec, cap_w):
    node = SimulatedNode(spec)
    if cap_w is not None:
        node.set_power_cap(cap_w)
        node.settle_after_cap()
    return OpenMPRuntime(node, seed=SEED)


def _noisy_objective(runtime, region):
    def objective(point) -> float:
        config = config_from_point(point)
        runtime.omp_set_num_threads(config.n_threads)
        runtime.omp_set_schedule(config.schedule, config.chunk)
        return runtime.parallel_for(region).time_s

    return objective


def _corpus(app, spec, space, regions, target_cap):
    """Leave-one-cap-out training corpus: the target region everywhere
    *except* the held-out cap, sibling regions everywhere."""
    engines = {cap: _engine(spec, cap) for cap in ALL_CAPS}

    def record(region_name, cap_w, indices) -> TrainingRecord:
        config = config_from_point(space.decode(indices))
        time_s = engines[cap_w]._simulate(
            regions[region_name], config
        ).time_s
        return TrainingRecord(
            app=app.label,
            machine="crill",
            region=region_name,
            cap_w=cap_w,
            n_threads=config.n_threads,
            schedule=config.schedule.value,
            chunk=config.chunk,
            time_s=time_s,
            energy_j=None,
            source="cache",
            provenance="bench_surrogate_sample_efficiency",
        )

    records = []
    for cap_w in ALL_CAPS:
        region_names = TRAIN_REGIONS + (
            () if cap_w == target_cap else (TARGET_REGION,)
        )
        for region_name in region_names:
            for indices in space.iter_indices():
                records.append(record(region_name, cap_w, indices))
    return records


def _tune(space, strategy, objective):
    session = TuningSession(space, strategy)
    evals = 0
    while not session.converged and evals < space.size + 10:
        point = session.suggest()
        session.report(objective(point))
        evals += 1
    assert session.converged
    return session.best_point(), evals


def run_sample_efficiency():
    spec = crill()
    space = search_space_for(spec)
    app = sp_application("B")
    regions = {p.name: p for p in app.regions()}
    region = regions[TARGET_REGION]

    results = []
    for cap_w in TARGET_CAPS:
        truth_engine = _engine(spec, cap_w)
        truth = {
            indices: truth_engine._simulate(
                region, config_from_point(space.decode(indices))
            ).time_s
            for indices in space.iter_indices()
        }
        optimum = min(truth.values())

        model = fit_surrogate(
            _corpus(app, spec, space, regions, cap_w), seed=SEED
        )
        tuning = SurrogateTuning(model=model, top_k=TOP_K)
        assert tuning.fallback_reason() is None, (
            f"model not trusted at cap {cap_w}: "
            f"{tuning.fallback_reason()}"
        )
        order = tuning.orders_for(app, spec, cap_w)[TARGET_REGION]

        surr_point, surr_evals = _tune(
            space,
            make_strategy("surrogate", space, seed=SEED, order=order),
            _noisy_objective(_runtime(spec, cap_w), region),
        )
        nm_point, nm_evals = _tune(
            space,
            make_strategy(
                "nelder-mead", space, max_evals=NM_BUDGET, seed=SEED
            ),
            _noisy_objective(_runtime(spec, cap_w), region),
        )

        results.append(
            {
                "cap_w": cap_w,
                "exhaustive_best_s": optimum,
                "surrogate_best_s": truth[space.encode(surr_point)],
                "surrogate_probes": surr_evals,
                "nm_best_s": truth[space.encode(nm_point)],
                "nm_probes": nm_evals,
                "holdout_rel_err": model.report.holdout_rel_err,
            }
        )
    return results


def test_surrogate_sample_efficiency(benchmark, save_result):
    results = benchmark.pedantic(
        run_sample_efficiency, rounds=1, iterations=1
    )
    rows = [
        (
            f"{row['cap_w']:g} W",
            f"{row['exhaustive_best_s'] * 1e3:.3f}",
            f"{row['surrogate_best_s'] * 1e3:.3f}",
            row["surrogate_probes"],
            f"{row['nm_best_s'] * 1e3:.3f}",
            row["nm_probes"],
            f"{row['nm_probes'] / row['surrogate_probes']:.1f}x",
        )
        for row in results
    ]
    metrics = {}
    for row in results:
        cap = f"{row['cap_w']:g}W"
        metrics[f"surrogate_best_s[{cap}]"] = {
            "value": row["surrogate_best_s"],
            "direction": "lower",
            "unit": "s",
        }
        metrics[f"surrogate_probes[{cap}]"] = {
            "value": row["surrogate_probes"],
            "direction": "lower",
            "unit": "probes",
        }
        metrics[f"nm_probes[{cap}]"] = {
            "value": row["nm_probes"],
            "direction": "lower",
            "unit": "probes",
        }
        metrics[f"holdout_rel_err[{cap}]"] = {
            "value": row["holdout_rel_err"],
            "direction": "lower",
        }
    save_result(
        "surrogate_sample_efficiency",
        format_table(
            (
                "power cap",
                "exhaustive best (ms)",
                "surrogate best (ms)",
                "surrogate probes",
                "nelder-mead best (ms)",
                "nelder-mead probes",
                "probe advantage",
            ),
            rows,
            title=(
                "Surrogate sample efficiency on SP y_solve "
                "(Crill, leave-one-cap-out)"
            ),
        ),
        metrics=metrics,
        records=results,
        machine="crill",
        seed=SEED,
        config={
            "top_k": TOP_K,
            "nm_budget": NM_BUDGET,
            "target_region": TARGET_REGION,
            "train_regions": list(TRAIN_REGIONS),
            "caps": [cap if cap is not None else "tdp" for cap in ALL_CAPS],
        },
    )
    for row in results:
        # the headline claim: within 5% of the exhaustive optimum in
        # at most a third of Nelder-Mead's probes, at both cap levels
        assert (
            row["surrogate_best_s"]
            <= 1.05 * row["exhaustive_best_s"]
        ), f"surrogate missed the optimum at {row['cap_w']:g} W"
        assert 3 * row["surrogate_probes"] <= row["nm_probes"], (
            f"surrogate spent too many probes at {row['cap_w']:g} W"
        )
