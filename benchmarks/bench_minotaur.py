"""Section V text claims on the POWER8 machine (Minotaur): SP-B ~37%
execution-time improvement; BT-B improved only by Offline (~8%)."""

from repro.core.history import HistoryStore
from repro.experiments.runner import (
    ExperimentSetup,
    run_arcs_offline,
    run_arcs_online,
    run_default,
)
from repro.machine.spec import minotaur
from repro.util.tables import format_table
from repro.workloads.bt import bt_application
from repro.workloads.sp import sp_application


def minotaur_runs():
    history = HistoryStore()
    setup = ExperimentSetup(spec=minotaur(), repeats=3)
    out = {}
    for app in (sp_application("B"), bt_application("B")):
        base = run_default(app, setup)
        online = run_arcs_online(app, setup)
        offline = run_arcs_offline(app, setup, history=history)
        out[app.label] = (base, online, offline)
    return out


def test_minotaur_claims(benchmark, save_result):
    runs = benchmark.pedantic(minotaur_runs, rounds=1, iterations=1)
    rows = []
    metrics = {}
    records = []
    for label, (base, online, offline) in runs.items():
        for res in (base, online, offline):
            imp = 100 * (1 - res.time_s / base.time_s)
            rows.append(
                (label, res.strategy, f"{res.time_s:.3f}",
                 f"{imp:+.1f}%")
            )
            metrics[f"time_s[{label}/{res.strategy}]"] = {
                "value": res.time_s, "direction": "lower", "unit": "s",
            }
            metrics[f"improvement_pct[{label}/{res.strategy}]"] = {
                "value": imp, "direction": "higher", "unit": "%",
            }
            records.append(
                {"app": label, "strategy": res.strategy,
                 "time_s": res.time_s, "improvement_pct": imp}
            )
    save_result(
        "minotaur_claims",
        format_table(
            ("app", "strategy", "time (s)", "improvement"),
            rows,
            title="Minotaur (POWER8, TDP, min-of-3): Section V claims",
        ),
        metrics=metrics,
        records=records,
        machine="minotaur",
        config={"repeats": 3},
    )
    sp_base, _sp_online, sp_offline = runs["sp.B"]
    bt_base, bt_online, bt_offline = runs["bt.B"]
    sp_gain = 100 * (1 - sp_offline.time_s / sp_base.time_s)
    bt_gain = 100 * (1 - bt_offline.time_s / bt_base.time_s)
    # paper: SP 37%; BT only Offline, ~8%
    assert 25.0 < sp_gain < 55.0
    assert 2.0 < bt_gain < 20.0
    assert bt_online.time_s > bt_offline.time_s
