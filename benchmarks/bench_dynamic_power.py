"""Section II's dynamic scenario: "the resource manager may add/remove
... nodes and adjust their power level dynamically.  To get the best
per node performance at each power level, the runtime configurations
need to be changed dynamically.  Our ARCS framework can do this
efficiently."

The node starts at TDP and is capped to 55 W halfway through the run.
Compared: the default configuration, plain ARCS-Online (whose sessions
ignore the cap change), and cap-aware ARCS-Online (fresh sessions per
power level).
"""

from repro.core.controller import ARCS
from repro.experiments.runner import ExperimentSetup, fresh_runtime
from repro.machine.spec import crill
from repro.util.tables import format_table
from repro.workloads.base import run_application
from repro.workloads.sp import sp_application
import dataclasses


def run_with_cap_change(attach_arcs=None, cap_aware=False):
    """Run SP-B (extended); drop the package cap to 55 W after the
    first quarter - the node then runs power-constrained for the bulk
    of the job, as a resource manager's reallocation would have it."""
    app = dataclasses.replace(sp_application("B"), timesteps=120)
    quarter = app.timesteps // 4
    first = dataclasses.replace(app, timesteps=quarter)
    second = dataclasses.replace(app, timesteps=app.timesteps - quarter)

    setup = ExperimentSetup(spec=crill(), repeats=1)
    runtime = fresh_runtime(setup)
    arcs = None
    if attach_arcs:
        arcs = ARCS(
            runtime, strategy="nelder-mead", max_evals=30,
            cap_aware=cap_aware,
        )
        arcs.attach()
    r1 = run_application(first, runtime)
    runtime.node.set_power_cap(55.0)
    runtime.node.settle_after_cap()
    r2 = run_application(second, runtime)
    if arcs is not None:
        arcs.finalize()
    return r1.time_s + r2.time_s, (r1.energy_j or 0) + (r2.energy_j or 0)


def run_all():
    default = run_with_cap_change(attach_arcs=False)
    plain = run_with_cap_change(attach_arcs=True, cap_aware=False)
    aware = run_with_cap_change(attach_arcs=True, cap_aware=True)
    return default, plain, aware


def test_dynamic_power_adaptation(benchmark, save_result):
    (d_t, d_e), (p_t, p_e), (a_t, a_e) = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    rows = [
        ("default", f"{d_t:.3f}", "1.000", f"{d_e:.1f}"),
        ("arcs-online (cap-blind)", f"{p_t:.3f}", f"{p_t / d_t:.3f}",
         f"{p_e:.1f}"),
        ("arcs-online (cap-aware)", f"{a_t:.3f}", f"{a_t / d_t:.3f}",
         f"{a_e:.1f}"),
    ]
    save_result(
        "dynamic_power_adaptation",
        format_table(
            ("strategy", "time (s)", "norm", "pkg energy (J)"),
            rows,
            title="SP-B with a mid-run TDP -> 55 W cap change (Crill)",
        ),
        metrics={
            "default_time_s": {"value": d_t, "direction": "lower",
                               "unit": "s"},
            "cap_blind_time_s": {"value": p_t, "direction": "lower",
                                 "unit": "s"},
            "cap_aware_time_s": {"value": a_t, "direction": "lower",
                                 "unit": "s"},
            "cap_blind_time_norm": {"value": p_t / d_t,
                                    "direction": "lower"},
            "cap_aware_time_norm": {"value": a_t / d_t,
                                    "direction": "lower"},
        },
        records=[
            {"strategy": "default", "time_s": d_t,
             "time_norm": 1.0, "energy_j": d_e},
            {"strategy": "arcs-online (cap-blind)", "time_s": p_t,
             "time_norm": p_t / d_t, "energy_j": p_e},
            {"strategy": "arcs-online (cap-aware)", "time_s": a_t,
             "time_norm": a_t / d_t, "energy_j": a_e},
        ],
        machine="crill",
        config={"cap_schedule": "TDP->55W at t/4"},
    )
    # both ARCS modes beat the default through the cap change
    assert p_t < d_t
    assert a_t < d_t
    # Re-tuning for the new power level pays a second (warm-started)
    # search.  On this workload the TDP optima remain near-optimal at
    # 55 W, so cap-aware lands close to cap-blind; its value is the
    # guarantee of level-specific optima when the landscape *does*
    # shift (see the integration test asserting configs differ across
    # caps).
    assert a_t < p_t * 1.08
