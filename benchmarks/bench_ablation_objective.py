"""Ablation: tuning objective (time vs energy vs EDP) with the
future-work DVFS dimension, under an 85 W cap.

The paper tunes for execution time only.  With per-region frequency
ceilings in the search space, an energy objective can slow memory-bound
regions down (their stall time is frequency-invariant) to save package
power - the classic race-to-idle-vs-slowdown trade-off.
"""

from repro.core.config import config_from_point, search_space_for
from repro.machine.node import SimulatedNode
from repro.machine.spec import crill
from repro.openmp.engine import ExecutionEngine
from repro.util.tables import format_table
from repro.workloads.sp import sp_application


def sweep():
    """Per-region exhaustive argmin for each objective over the
    DVFS-extended space; returns app-level step time/energy sums."""
    spec = crill()
    space = search_space_for(spec, include_dvfs=True)
    node = SimulatedNode(spec)
    node.set_power_cap(85.0)
    node.settle_after_cap()
    engine = ExecutionEngine(node)
    regions = [rc.region for rc in sp_application("B").step_sequence]

    objectives = {
        "time": lambda rec: rec.time_s,
        "energy": lambda rec: rec.energy_j,
        "edp": lambda rec: rec.energy_j * rec.time_s,
    }
    totals = {name: [0.0, 0.0] for name in objectives}
    chosen_freqs: dict[str, list] = {name: [] for name in objectives}
    for region in regions:
        records = []
        for indices in space.iter_indices():
            point = space.decode(indices)
            cfg = config_from_point(point)
            freq = point["freq_ghz"]
            node.set_frequency_limit(
                None if freq is None else float(freq)  # type: ignore[arg-type]
            )
            records.append((point, engine._simulate(region, cfg)))
        node.set_frequency_limit(None)
        for name, fn in objectives.items():
            point, best = min(records, key=lambda pr: fn(pr[1]))
            totals[name][0] += best.time_s
            totals[name][1] += best.energy_j
            chosen_freqs[name].append(point["freq_ghz"])
    return totals, chosen_freqs


def test_objective_ablation(benchmark, save_result):
    totals, chosen_freqs = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    rows = []
    for name, (time_s, energy_j) in totals.items():
        capped = sum(1 for f in chosen_freqs[name] if f is not None)
        rows.append(
            (name, f"{time_s * 1e3:.2f}", f"{energy_j:.3f}",
             f"{capped}/{len(chosen_freqs[name])}")
        )
    metrics = {}
    for name, (time_s, energy_j) in totals.items():
        metrics[f"step_time_s[{name}]"] = {
            "value": time_s, "direction": "lower", "unit": "s",
        }
        metrics[f"step_energy_j[{name}]"] = {
            "value": energy_j, "direction": "lower", "unit": "J",
        }
    save_result(
        "ablation_objective_dvfs",
        format_table(
            ("objective", "SP step time (ms)", "step energy (J)",
             "regions w/ DVFS ceiling"),
            rows,
            title="Ablation: tuning objective with the DVFS dimension "
            "(SP-B, Crill, 85 W)",
        ),
        metrics=metrics,
        records=[
            {
                "objective": name,
                "step_time_s": time_s,
                "step_energy_j": energy_j,
                "dvfs_regions": sum(
                    1 for f in chosen_freqs[name] if f is not None
                ),
                "regions": len(chosen_freqs[name]),
            }
            for name, (time_s, energy_j) in totals.items()
        ],
        machine="crill",
        config={"cap_w": 85.0},
    )
    # time-argmin is fastest; energy-argmin uses least energy
    assert totals["time"][0] <= totals["energy"][0] + 1e-12
    assert totals["energy"][1] <= totals["time"][1] + 1e-12
    # EDP sits between the two on both axes
    assert totals["time"][0] <= totals["edp"][0] + 1e-9
    assert totals["energy"][1] <= totals["edp"][1] + 1e-9
