"""Ablation: per-region tuning vs one global configuration.

"Unlike the initial parameter search, ARCS can tune the settings for
each OpenMP parallel region independently" (Section III-B) - this
ablation quantifies what that independence buys on SP, whose regions
have very different optimal configurations (Table II).
"""

from repro.core.config import config_from_point, search_space_for
from repro.machine.node import SimulatedNode
from repro.machine.spec import crill
from repro.openmp.engine import ExecutionEngine
from repro.util.tables import format_table
from repro.workloads.sp import sp_application


def run_ablation():
    spec = crill()
    space = search_space_for(spec)
    engine = ExecutionEngine(SimulatedNode(spec))
    app = sp_application("B")
    regions = [rc.region for rc in app.step_sequence]

    per_config_step = {}
    for indices in space.iter_indices():
        cfg = config_from_point(space.decode(indices))
        per_config_step[cfg] = {
            r.name: engine._simulate(r, cfg).time_s for r in regions
        }

    # best single global configuration
    global_cfg, global_step = min(
        (
            (cfg, sum(times.values()))
            for cfg, times in per_config_step.items()
        ),
        key=lambda item: item[1],
    )
    # per-region optimum (what ARCS achieves, modulo overheads)
    per_region_step = sum(
        min(times[r.name] for times in per_config_step.values())
        for r in regions
    )
    default_step = sum(
        per_config_step[
            max(per_config_step, key=lambda c: c.n_threads)
        ].values()
    )
    # recompute the true default (32, static, default)
    from repro.openmp.types import default_config

    dflt = default_config(spec.total_hw_threads)
    default_step = sum(
        engine._simulate(r, dflt).time_s for r in regions
    )
    return default_step, global_cfg, global_step, per_region_step


def test_per_region_beats_global(benchmark, save_result):
    default_step, global_cfg, global_step, per_region_step = (
        benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    )
    rows = [
        ("default (32, static, default)", f"{default_step * 1e3:.2f}",
         "1.000"),
        (
            f"best global config ({global_cfg.label()})",
            f"{global_step * 1e3:.2f}",
            f"{global_step / default_step:.3f}",
        ),
        (
            "per-region optimum (ARCS upper bound)",
            f"{per_region_step * 1e3:.2f}",
            f"{per_region_step / default_step:.3f}",
        ),
    ]
    save_result(
        "ablation_per_region",
        format_table(
            ("configuration policy", "SP step time (ms)", "normalized"),
            rows,
            title="Ablation: per-region tuning vs one global config "
            "(SP-B, Crill, TDP)",
        ),
        metrics={
            "default_step_s": {
                "value": default_step, "direction": "lower",
                "unit": "s",
            },
            "global_step_s": {
                "value": global_step, "direction": "lower",
                "unit": "s",
            },
            "per_region_step_s": {
                "value": per_region_step, "direction": "lower",
                "unit": "s",
            },
        },
        records=[
            {"policy": "default", "step_s": default_step,
             "config": None},
            {"policy": "best-global", "step_s": global_step,
             "config": global_cfg.label()},
            {"policy": "per-region", "step_s": per_region_step,
             "config": None},
        ],
        machine="crill",
    )
    assert global_step < default_step          # tuning helps at all
    assert per_region_step < global_step        # per-region helps more
