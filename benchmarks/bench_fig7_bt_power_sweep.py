"""Figure 7: BT-B application-level time & energy across power levels -
the little-headroom case."""

from repro.analysis.bench import sweep_metrics
from repro.analysis.records import sweep_records
from repro.experiments.figures import fig7_bt_power_sweep
from repro.experiments.reporting import render_sweep


def test_fig7(benchmark, save_result, sweep_workers, sweep_cache):
    sweep = benchmark.pedantic(
        fig7_bt_power_sweep,
        kwargs={
            "repeats": 3,
            "workers": sweep_workers,
            "cache": sweep_cache,
        },
        rounds=1,
        iterations=1,
    )
    save_result(
        "fig7_bt_power_sweep",
        render_sweep(sweep, "Fig. 7: BT-B on Crill"),
        metrics=sweep_metrics(sweep),
        records=sweep_records(sweep),
        machine=sweep.machine,
        seed=0,
        config={"repeats": 3, "workers": sweep_workers,
                "cached": sweep_cache is not None},
    )
    for cap in sweep.caps:
        label = sweep.cap_label(cap)
        offline = sweep.cells[(label, "arcs-offline")]
        online = sweep.cells[(label, "arcs-online")]
        # paper: improvements are small at every level (<= ~3%), and
        # ARCS can even lose to the default
        assert 0.93 < offline.time_norm < 1.06
        assert 0.93 < online.time_norm < 1.08
