"""Figure 10: LULESH CalcFBHourglassForceForElems features."""

from repro.analysis.bench import feature_metrics
from repro.analysis.records import feature_records
from repro.experiments.figures import fig10_lulesh_features
from repro.experiments.reporting import render_features


def test_fig10(benchmark, save_result):
    comparison = benchmark.pedantic(
        fig10_lulesh_features, rounds=1, iterations=1
    )
    save_result(
        "fig10_lulesh_features",
        render_features(
            comparison,
            "Fig. 10: LULESH CalcFBHourglassForceForElems, default vs "
            "ARCS-Offline",
        ),
        metrics=feature_metrics(comparison),
        records=feature_records(comparison),
        machine="crill",
        seed=0,
    )
    feats = comparison.offline_normalized[
        "CalcFBHourglassForceForElems_"
    ]
    # paper: the chosen config drives OMP_BARRIER to almost zero and
    # improves L1/L3 visibly
    assert feats["OMP_BARRIER"] < 0.5
    assert feats["L3 miss"] < 0.9
