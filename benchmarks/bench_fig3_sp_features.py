"""Figure 3: SP per-region cache/barrier features, default vs Offline."""

from repro.analysis.bench import feature_metrics
from repro.analysis.records import feature_records
from repro.experiments.figures import SP_MAJOR_REGIONS, fig3_sp_features
from repro.experiments.reporting import render_features


def test_fig3(benchmark, save_result):
    comparison = benchmark.pedantic(
        fig3_sp_features, rounds=1, iterations=1
    )
    save_result(
        "fig3_sp_features",
        render_features(
            comparison,
            "Fig. 3: SP major regions, default vs ARCS-Offline (TDP)",
        ),
        metrics=feature_metrics(comparison),
        records=feature_records(comparison),
        machine="crill",
        seed=0,
    )
    for region in SP_MAJOR_REGIONS:
        feats = comparison.offline_normalized[region]
        # barrier time drops substantially in every region (paper: >50%)
        assert feats["OMP_BARRIER"] < 0.8
        # L3 behaviour improves (paper: up to ~90%)
        assert feats["L3 miss"] < 0.9
    best_l3 = min(
        comparison.offline_normalized[r]["L3 miss"]
        for r in SP_MAJOR_REGIONS
    )
    assert best_l3 < 0.55
