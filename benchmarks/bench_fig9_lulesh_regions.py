"""Figure 9: OMPT event breakdown for the top-5 LULESH regions."""

from repro.analysis.records import fig9_records
from repro.experiments.figures import fig9_lulesh_regions
from repro.experiments.reporting import render_fig9


def test_fig9(benchmark, save_result):
    rows = benchmark.pedantic(fig9_lulesh_regions, rounds=1, iterations=1)
    save_result(
        "fig9_lulesh_regions",
        render_fig9(rows),
        # descriptive OMPT statistics, not a perf gate: recorded for
        # trend plots but never diffed against a tolerance
        metrics={
            f"barrier_fraction[{r.region}]": {
                "value": r.barrier_fraction, "direction": "info",
            }
            for r in rows
        },
        records=fig9_records(rows),
        machine="crill",
        seed=0,
    )

    names = [r.region for r in rows]
    # the most time-consuming region is EvalEOSForElems_ (paper)
    assert names[0] == "EvalEOSForElems_"
    assert "CalcFBHourglassForceForElems_" in names
    eval_eos = rows[0]
    # most of EvalEOS's inclusive time is not loop work
    assert eval_eos.loop_s < 0.6 * eval_eos.implicit_task_s
    assert eval_eos.barrier_fraction > 0.3
    # tiny per-call times comparable to the 0.8 ms config overhead
    assert eval_eos.time_per_call_s < 1.5e-3
    # the big element loops are nearly barrier-free
    kin = next(r for r in rows if r.region == "CalcKinematicsForElems_")
    assert kin.barrier_fraction < 0.05
